//! GPTQ: accurate one-shot weight quantization with second-order
//! information (Frantar et al., reimplemented from the algorithm).
//!
//! For each projection with weights `W [out, in]` and calibration inputs
//! `X [n, in]`:
//!
//! 1. `H = XᵀX + λI` (λ = 1% of the mean diagonal, "dampening");
//! 2. `U = upper Cholesky factor of H⁻¹`;
//! 3. sweep columns `j = 0..in`: quantize column `j` (per-group affine, the
//!    group parameters frozen when the sweep enters the group), compute the
//!    compensated error `e = (w_j − q_j)/U[j,j]`, and fold `e·U[j, j+1:]`
//!    into the not-yet-quantized columns.
//!
//! With no calibration the Hessian degenerates to `I` and GPTQ reduces to
//! RTN (which the tests assert).

use crate::common::{effective_group, group_quant_size_bytes, QuantResult, WeightQuantizer};
use crate::linalg::{cholesky_lower, gram, spd_inverse};
use edkm_tensor::{DType, Tensor};

/// The GPTQ quantizer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GptqQuantizer {
    bits: u8,
    group: usize,
    damp_frac: f32,
    act_order: bool,
}

impl GptqQuantizer {
    /// GPTQ at `bits` with `group` columns per scale (paper setting:
    /// `g128`).
    pub fn new(bits: u8, group: usize) -> Self {
        assert!((1..=8).contains(&bits), "gptq bits must be 1..=8");
        GptqQuantizer {
            bits,
            group,
            damp_frac: 0.01,
            act_order: false,
        }
    }

    /// Enable activation ordering (`--act-order` in the reference
    /// implementation): columns are quantized in order of decreasing
    /// Hessian diagonal, so the most sensitive inputs are handled while the
    /// most error-compensation budget remains.
    pub fn with_act_order(mut self) -> Self {
        self.act_order = true;
        self
    }

    fn quant_params(seg: &[f32], bits: u8) -> (f32, f32) {
        let levels = ((1u32 << bits) - 1) as f32;
        let lo = seg.iter().cloned().fold(f32::INFINITY, f32::min);
        let hi = seg.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let scale = if hi > lo { (hi - lo) / levels } else { 1.0 };
        (scale, lo)
    }

    fn quantize_value(v: f32, scale: f32, zero: f32, bits: u8) -> f32 {
        let levels = ((1u32 << bits) - 1) as f32;
        let q = ((v - zero) / scale).round().clamp(0.0, levels);
        q * scale + zero
    }
}

impl WeightQuantizer for GptqQuantizer {
    fn method_name(&self) -> String {
        if self.group == 0 {
            "GPTQ".to_string()
        } else {
            format!("GPTQ g{}", self.group)
        }
    }

    fn bits(&self) -> u8 {
        self.bits
    }

    fn quantize(&self, w: &Tensor, calib: Option<&Tensor>) -> QuantResult {
        assert_eq!(w.rank(), 2, "GPTQ expects [out, in]");
        let (rows, cols) = (w.shape()[0], w.shape()[1]);
        let g = effective_group(cols, self.group);

        // Hessian from calibration (identity when absent).
        let mut h = match calib {
            Some(x) => {
                assert_eq!(
                    *x.shape().last().expect("calib rank"),
                    cols,
                    "calibration width must match in_features"
                );
                let xr = x.numel() / cols;
                gram(&x.to_vec(), xr, cols)
            }
            None => {
                let mut eye = vec![0.0f32; cols * cols];
                for i in 0..cols {
                    eye[i * cols + i] = 1.0;
                }
                eye
            }
        };
        // Dead inputs + dampening.
        let mean_diag: f32 = (0..cols).map(|i| h[i * cols + i]).sum::<f32>() / cols as f32;
        let damp = (self.damp_frac * mean_diag).max(1e-6);
        for i in 0..cols {
            if h[i * cols + i] == 0.0 {
                h[i * cols + i] = 1.0;
            }
            h[i * cols + i] += damp;
        }

        // Activation ordering: process the loudest inputs first.
        let perm: Vec<usize> = if self.act_order {
            let mut idx: Vec<usize> = (0..cols).collect();
            idx.sort_by(|&a, &b| {
                h[b * cols + b]
                    .partial_cmp(&h[a * cols + a])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            idx
        } else {
            (0..cols).collect()
        };
        if self.act_order {
            let hp: Vec<f32> = (0..cols)
                .flat_map(|i| (0..cols).map(move |j| (i, j)))
                .map(|(i, j)| h[perm[i] * cols + perm[j]])
                .collect();
            h = hp;
        }

        // U = upper Cholesky factor of H^{-1} (row-major; U = Lᵀ of
        // chol(H^{-1})).
        let hinv = spd_inverse(&h, cols).expect("damped Hessian must be SPD");
        let l = cholesky_lower(&hinv, cols).expect("H^{-1} must be SPD");
        let u = |r: usize, c: usize| l[c * cols + r]; // transpose access

        let orig = w.to_vec();
        let mut wd = if self.act_order {
            let mut p = vec![0.0f32; rows * cols];
            for r in 0..rows {
                for j in 0..cols {
                    p[r * cols + j] = orig[r * cols + perm[j]];
                }
            }
            p
        } else {
            orig
        };
        let mut params: Vec<(f32, f32)> = vec![(1.0, 0.0); rows];
        for j in 0..cols {
            if j % g == 0 {
                // Freeze group parameters from the current (compensated)
                // values of this group's columns.
                let gend = (j + g).min(cols);
                for (r, p) in params.iter_mut().enumerate() {
                    let seg: Vec<f32> = (j..gend).map(|c| wd[r * cols + c]).collect();
                    *p = Self::quant_params(&seg, self.bits);
                }
            }
            let ujj = u(j, j).max(1e-12);
            for r in 0..rows {
                let (scale, zero) = params[r];
                let v = wd[r * cols + j];
                let q = Self::quantize_value(v, scale, zero, self.bits);
                wd[r * cols + j] = q;
                let err = (v - q) / ujj;
                for c in (j + 1)..cols {
                    wd[r * cols + c] -= err * u(j, c);
                }
            }
        }

        // Undo the activation ordering.
        if self.act_order {
            let mut unp = vec![0.0f32; rows * cols];
            for r in 0..rows {
                for j in 0..cols {
                    unp[r * cols + perm[j]] = wd[r * cols + j];
                }
            }
            wd = unp;
        }

        QuantResult {
            dequantized: Tensor::from_vec(wd, &[rows, cols], DType::F32, w.device()),
            size_bytes: group_quant_size_bytes(rows, cols, self.bits, g),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rtn::RtnQuantizer;
    use edkm_tensor::{ops as t, runtime, Device};

    /// ‖X·Wᵀ − X·Ŵᵀ‖² on the calibration set — the loss GPTQ minimizes.
    fn output_mse(x: &Tensor, w: &Tensor, wq: &Tensor) -> f64 {
        let y = t::matmul(x, &w.t());
        let yq = t::matmul(x, &wq.t());
        y.to_vec()
            .iter()
            .zip(yq.to_vec())
            .map(|(a, b)| ((a - b) as f64).powi(2))
            .sum()
    }

    #[test]
    fn name_and_bits() {
        assert_eq!(GptqQuantizer::new(3, 128).method_name(), "GPTQ g128");
        assert_eq!(GptqQuantizer::new(4, 0).method_name(), "GPTQ");
        assert_eq!(GptqQuantizer::new(4, 0).bits(), 4);
    }

    #[test]
    fn without_calibration_matches_rtn_closely() {
        runtime::reset();
        // With H = I there is no error propagation beyond the dampening, so
        // GPTQ degenerates to per-group RTN.
        let w = Tensor::randn(&[4, 16], DType::F32, Device::Cpu, 0);
        let gptq = GptqQuantizer::new(4, 8).quantize(&w, None);
        let rtn = RtnQuantizer::new(4, 8).quantize(&w, None);
        assert!(t::allclose(&gptq.dequantized, &rtn.dequantized, 1e-4));
        assert_eq!(gptq.size_bytes, rtn.size_bytes);
    }

    #[test]
    fn beats_rtn_on_calibration_loss() {
        runtime::reset();
        // Anisotropic activations (some channels much louder) is where
        // second-order compensation pays off.
        let scales: Vec<f32> = (0..16)
            .map(|i| if i % 4 == 0 { 8.0 } else { 0.5 })
            .collect();
        let x_raw = Tensor::randn(&[128, 16], DType::F32, Device::Cpu, 1);
        let xd: Vec<f32> = x_raw
            .to_vec()
            .chunks(16)
            .flat_map(|row| {
                row.iter()
                    .zip(&scales)
                    .map(|(v, s)| v * s)
                    .collect::<Vec<_>>()
            })
            .collect();
        let x = Tensor::from_vec(xd, &[128, 16], DType::F32, Device::Cpu);
        let w = Tensor::randn(&[8, 16], DType::F32, Device::Cpu, 2);

        let gptq = GptqQuantizer::new(3, 0).quantize(&w, Some(&x));
        let rtn = RtnQuantizer::new(3, 0).quantize(&w, None);
        let e_gptq = output_mse(&x, &w, &gptq.dequantized);
        let e_rtn = output_mse(&x, &w, &rtn.dequantized);
        assert!(
            e_gptq < e_rtn,
            "GPTQ must beat RTN on calibration loss: {e_gptq} vs {e_rtn}"
        );
    }

    #[test]
    fn eight_bit_is_near_lossless() {
        runtime::reset();
        let x = Tensor::randn(&[64, 12], DType::F32, Device::Cpu, 3);
        let w = Tensor::randn(&[6, 12], DType::F32, Device::Cpu, 4);
        let q = GptqQuantizer::new(8, 0).quantize(&w, Some(&x));
        let rel = output_mse(&x, &w, &q.dequantized)
            / output_mse(&x, &w, &Tensor::zeros(&[6, 12], DType::F32, Device::Cpu));
        assert!(rel < 1e-4, "8-bit relative error {rel}");
    }

    #[test]
    fn act_order_does_not_hurt_and_often_helps() {
        runtime::reset();
        // Strongly anisotropic activations: act-order quantizes loud
        // channels first, while full compensation budget remains.
        let scales: Vec<f32> = (0..16).map(|i| if i >= 12 { 20.0 } else { 0.3 }).collect();
        let x_raw = Tensor::randn(&[128, 16], DType::F32, Device::Cpu, 9);
        let xd: Vec<f32> = x_raw
            .to_vec()
            .chunks(16)
            .flat_map(|row| {
                row.iter()
                    .zip(&scales)
                    .map(|(v, s)| v * s)
                    .collect::<Vec<_>>()
            })
            .collect();
        let x = Tensor::from_vec(xd, &[128, 16], DType::F32, Device::Cpu);
        let w = Tensor::randn(&[8, 16], DType::F32, Device::Cpu, 10);

        let plain = GptqQuantizer::new(3, 0).quantize(&w, Some(&x));
        let ordered = GptqQuantizer::new(3, 0)
            .with_act_order()
            .quantize(&w, Some(&x));
        let e_plain = output_mse(&x, &w, &plain.dequantized);
        let e_ordered = output_mse(&x, &w, &ordered.dequantized);
        assert!(
            e_ordered <= e_plain * 1.1,
            "act-order must not regress materially: {e_ordered} vs {e_plain}"
        );
        assert!(ordered.dequantized.to_vec().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn act_order_is_identity_permutation_without_calibration() {
        runtime::reset();
        // With H = I all diagonals tie, so ordering must not change results.
        let w = Tensor::randn(&[4, 8], DType::F32, Device::Cpu, 11);
        let plain = GptqQuantizer::new(4, 4).quantize(&w, None);
        let ordered = GptqQuantizer::new(4, 4).with_act_order().quantize(&w, None);
        assert!(t::allclose(&plain.dequantized, &ordered.dequantized, 1e-5));
    }

    #[test]
    fn handles_dead_channels() {
        runtime::reset();
        // One calibration channel is always zero.
        let mut xd = Tensor::randn(&[32, 8], DType::F32, Device::Cpu, 5).to_vec();
        for r in 0..32 {
            xd[r * 8 + 3] = 0.0;
        }
        let x = Tensor::from_vec(xd, &[32, 8], DType::F32, Device::Cpu);
        let w = Tensor::randn(&[4, 8], DType::F32, Device::Cpu, 6);
        let q = GptqQuantizer::new(4, 0).quantize(&w, Some(&x));
        assert!(q.dequantized.to_vec().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn group_boundaries_respected() {
        runtime::reset();
        let x = Tensor::randn(&[64, 16], DType::F32, Device::Cpu, 7);
        let w = Tensor::randn(&[4, 16], DType::F32, Device::Cpu, 8);
        let q = GptqQuantizer::new(3, 4).quantize(&w, Some(&x));
        // 3 bits => at most 8 distinct values per (row, group).
        let d = q.dequantized.to_vec();
        for r in 0..4 {
            for gi in 0..4 {
                let seg: std::collections::HashSet<u32> =
                    (0..4).map(|c| d[r * 16 + gi * 4 + c].to_bits()).collect();
                assert!(seg.len() <= 8);
            }
        }
    }
}
