//! Small dense linear algebra for GPTQ (Cholesky, triangular inverse).

/// Cholesky factor `L` (lower) of a symmetric positive-definite `a`
/// (row-major `n × n`): `a = L Lᵀ`.
///
/// Returns `None` if the matrix is not positive definite.
pub fn cholesky_lower(a: &[f32], n: usize) -> Option<Vec<f32>> {
    assert_eq!(a.len(), n * n, "matrix must be n*n");
    let mut l = vec![0.0f32; n * n];
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[i * n + j] as f64;
            for k in 0..j {
                sum -= l[i * n + k] as f64 * l[j * n + k] as f64;
            }
            if i == j {
                if sum <= 0.0 {
                    return None;
                }
                l[i * n + j] = (sum.sqrt()) as f32;
            } else {
                l[i * n + j] = (sum / l[j * n + j] as f64) as f32;
            }
        }
    }
    Some(l)
}

/// Inverse of a lower-triangular matrix (forward substitution per column).
///
/// # Panics
///
/// Panics if a diagonal element is zero.
pub fn invert_lower(l: &[f32], n: usize) -> Vec<f32> {
    let mut inv = vec![0.0f32; n * n];
    for col in 0..n {
        inv[col * n + col] = 1.0 / l[col * n + col];
        for i in (col + 1)..n {
            let mut sum = 0.0f64;
            for k in col..i {
                sum += l[i * n + k] as f64 * inv[k * n + col] as f64;
            }
            assert!(l[i * n + i] != 0.0, "singular triangular matrix");
            inv[i * n + col] = (-sum / l[i * n + i] as f64) as f32;
        }
    }
    inv
}

/// Inverse of a symmetric positive-definite matrix via Cholesky:
/// `a⁻¹ = L⁻ᵀ L⁻¹`.
pub fn spd_inverse(a: &[f32], n: usize) -> Option<Vec<f32>> {
    let l = cholesky_lower(a, n)?;
    let linv = invert_lower(&l, n);
    // a^{-1}[i][j] = Σ_k linv[k][i] · linv[k][j]
    let mut inv = vec![0.0f32; n * n];
    for i in 0..n {
        for j in 0..=i {
            let mut sum = 0.0f64;
            for k in i.max(j)..n {
                sum += linv[k * n + i] as f64 * linv[k * n + j] as f64;
            }
            inv[i * n + j] = sum as f32;
            inv[j * n + i] = sum as f32;
        }
    }
    Some(inv)
}

/// `aᵀa` of an `[r, c]` matrix → `[c, c]` Gram matrix.
pub fn gram(a: &[f32], r: usize, c: usize) -> Vec<f32> {
    assert_eq!(a.len(), r * c);
    let mut g = vec![0.0f32; c * c];
    for row in a.chunks(c) {
        for i in 0..c {
            let ri = row[i];
            if ri == 0.0 {
                continue;
            }
            for j in 0..c {
                g[i * c + j] += ri * row[j];
            }
        }
    }
    g
}

/// Multiply `[n,n]` square matrices (row-major) — test helper exposed for
/// downstream property tests.
pub fn matmul_square(a: &[f32], b: &[f32], n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; n * n];
    for i in 0..n {
        for k in 0..n {
            let v = a[i * n + k];
            if v == 0.0 {
                continue;
            }
            for j in 0..n {
                out[i * n + j] += v * b[k * n + j];
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn spd(n: usize, seed: u64) -> Vec<f32> {
        // A = B Bᵀ + n·I is SPD.
        let mut state = seed.wrapping_add(1);
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
        };
        let b: Vec<f32> = (0..n * n).map(|_| next()).collect();
        let mut a = vec![0.0f32; n * n];
        for i in 0..n {
            for j in 0..n {
                let mut s = 0.0;
                for k in 0..n {
                    s += b[i * n + k] * b[j * n + k];
                }
                a[i * n + j] = s + if i == j { n as f32 } else { 0.0 };
            }
        }
        a
    }

    #[test]
    fn cholesky_of_identity() {
        let eye = vec![1.0, 0.0, 0.0, 1.0];
        let l = cholesky_lower(&eye, 2).unwrap();
        assert_eq!(l, eye);
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = vec![1.0, 2.0, 2.0, 1.0]; // eigenvalues 3, -1
        assert!(cholesky_lower(&a, 2).is_none());
    }

    #[test]
    fn cholesky_reconstructs() {
        let n = 5;
        let a = spd(n, 3);
        let l = cholesky_lower(&a, n).unwrap();
        // L Lᵀ == A
        let mut lt = vec![0.0f32; n * n];
        for i in 0..n {
            for j in 0..n {
                lt[i * n + j] = l[j * n + i];
            }
        }
        let rec = matmul_square(&l, &lt, n);
        for (x, y) in rec.iter().zip(&a) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn triangular_inverse() {
        let l = vec![2.0, 0.0, 1.0, 4.0];
        let inv = invert_lower(&l, 2);
        let prod = matmul_square(&l, &inv, 2);
        assert!((prod[0] - 1.0).abs() < 1e-6);
        assert!((prod[3] - 1.0).abs() < 1e-6);
        assert!(prod[1].abs() < 1e-6 && prod[2].abs() < 1e-6);
    }

    #[test]
    fn gram_is_symmetric_psd_diag() {
        let a = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]; // [3, 2]
        let g = gram(&a, 3, 2);
        assert_eq!(g.len(), 4);
        assert_eq!(g[1], g[2]);
        assert!(g[0] > 0.0 && g[3] > 0.0);
        assert_eq!(g[0], 1.0 + 9.0 + 25.0);
    }

    proptest! {
        /// spd_inverse really inverts: A·A⁻¹ ≈ I.
        #[test]
        fn prop_spd_inverse(n in 1usize..8, seed in any::<u64>()) {
            let a = spd(n, seed);
            let inv = spd_inverse(&a, n).expect("spd must factor");
            let prod = matmul_square(&a, &inv, n);
            for i in 0..n {
                for j in 0..n {
                    let expect = if i == j { 1.0 } else { 0.0 };
                    prop_assert!((prod[i * n + j] - expect).abs() < 1e-2,
                        "prod[{i}][{j}] = {}", prod[i * n + j]);
                }
            }
        }
    }
}
