//! SmoothQuant: difficulty migration between activations and weights
//! (Xiao et al., reimplemented for the weight path).
//!
//! Activation outliers make activations hard to quantize while weights are
//! easy; SmoothQuant balances them with a per-channel scale
//! `s_i = max|x_i|^α / max|w_i|^{1−α}` folded into the weights
//! (`W' = W · diag(s)`) and out of the activations (`x' = x / s`). We
//! quantize the smoothed weights and fold the scales back, which is the
//! weight-side effect visible to a weight-only evaluation.

use crate::common::{effective_group, group_quant_size_bytes, QuantResult, WeightQuantizer};
use crate::rtn::RtnQuantizer;
use edkm_tensor::{DType, Tensor};

/// The SmoothQuant quantizer (weight path).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmoothQuantQuantizer {
    bits: u8,
    group: usize,
    /// Migration strength α (paper default 0.5).
    pub alpha: f32,
}

impl SmoothQuantQuantizer {
    /// SmoothQuant at `bits` (paper: 8) with migration strength 0.5.
    pub fn new(bits: u8, group: usize) -> Self {
        assert!((1..=8).contains(&bits), "smoothquant bits must be 1..=8");
        SmoothQuantQuantizer {
            bits,
            group,
            alpha: 0.5,
        }
    }

    fn smoothing_scales(&self, w: &Tensor, x: &Tensor) -> Vec<f32> {
        let cols = w.shape()[1];
        let (rows, xrows) = (w.shape()[0], x.numel() / cols);
        let wd = w.to_vec();
        let xd = x.to_vec();
        let mut wmax = vec![0.0f32; cols];
        for r in 0..rows {
            for c in 0..cols {
                wmax[c] = wmax[c].max(wd[r * cols + c].abs());
            }
        }
        let mut xmax = vec![0.0f32; cols];
        for r in 0..xrows {
            for c in 0..cols {
                xmax[c] = xmax[c].max(xd[r * cols + c].abs());
            }
        }
        (0..cols)
            .map(|c| {
                let num = xmax[c].max(1e-5).powf(self.alpha);
                let den = wmax[c].max(1e-5).powf(1.0 - self.alpha);
                (num / den).clamp(1e-4, 1e4)
            })
            .collect()
    }
}

impl WeightQuantizer for SmoothQuantQuantizer {
    fn method_name(&self) -> String {
        "SmoothQuant".to_string()
    }

    fn bits(&self) -> u8 {
        self.bits
    }

    fn quantize(&self, w: &Tensor, calib: Option<&Tensor>) -> QuantResult {
        assert_eq!(w.rank(), 2, "SmoothQuant expects [out, in]");
        let (rows, cols) = (w.shape()[0], w.shape()[1]);
        let g = effective_group(cols, self.group);
        let size_bytes = group_quant_size_bytes(rows, cols, self.bits, g);

        let Some(x) = calib else {
            return QuantResult {
                dequantized: RtnQuantizer::new(self.bits, self.group).fake_quant_tensor(w),
                size_bytes,
            };
        };

        let s = self.smoothing_scales(w, x);
        let mut smoothed = w.to_vec();
        for r in 0..rows {
            for c in 0..cols {
                smoothed[r * cols + c] *= s[c];
            }
        }
        let st = Tensor::from_vec(smoothed, &[rows, cols], DType::F32, w.device());
        let dq = RtnQuantizer::new(self.bits, self.group).fake_quant_tensor(&st);
        let mut out = dq.to_vec();
        for r in 0..rows {
            for c in 0..cols {
                out[r * cols + c] /= s[c];
            }
        }
        QuantResult {
            dequantized: Tensor::from_vec(out, &[rows, cols], DType::F32, w.device()),
            size_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edkm_tensor::{ops as t, runtime, Device};

    #[test]
    fn name_and_bits() {
        let q = SmoothQuantQuantizer::new(8, 0);
        assert_eq!(q.method_name(), "SmoothQuant");
        assert_eq!(q.bits(), 8);
        assert_eq!(q.alpha, 0.5);
    }

    #[test]
    fn eight_bit_roundtrip_is_tight() {
        runtime::reset();
        let w = Tensor::randn(&[8, 16], DType::F32, Device::Cpu, 0);
        let x = Tensor::randn(&[64, 16], DType::F32, Device::Cpu, 1);
        let q = SmoothQuantQuantizer::new(8, 0).quantize(&w, Some(&x));
        let err = t::max_abs_diff(&w, &q.dequantized);
        let range = w.to_vec().iter().fold(0.0f32, |a, &v| a.max(v.abs()));
        assert!(err < range * 0.02, "8-bit smoothquant error {err}");
    }

    #[test]
    fn scales_balance_outliers() {
        runtime::reset();
        let w = Tensor::randn(&[4, 8], DType::F32, Device::Cpu, 2);
        // Channel 0 has huge activations.
        let mut xd = Tensor::randn(&[32, 8], DType::F32, Device::Cpu, 3).to_vec();
        for r in 0..32 {
            xd[r * 8] *= 100.0;
        }
        let x = Tensor::from_vec(xd, &[32, 8], DType::F32, Device::Cpu);
        let q = SmoothQuantQuantizer::new(8, 0);
        let s = q.smoothing_scales(&w, &x);
        assert!(
            s[0] > s[1] * 3.0,
            "outlier channel must get the largest scale: {s:?}"
        );
    }

    #[test]
    fn no_calibration_falls_back_to_rtn() {
        runtime::reset();
        let w = Tensor::randn(&[4, 8], DType::F32, Device::Cpu, 4);
        let sq = SmoothQuantQuantizer::new(8, 0).quantize(&w, None);
        let rtn = RtnQuantizer::new(8, 0).quantize(&w, None);
        assert!(t::allclose(&sq.dequantized, &rtn.dequantized, 0.0));
    }
}
