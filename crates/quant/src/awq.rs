//! AWQ: activation-aware weight quantization (Lin et al., reimplemented).
//!
//! Salient weight channels — the ones multiplied by large activations — are
//! protected by scaling them up before quantization and folding the inverse
//! scale back afterwards: `W ≈ (Q(W · s) )· s⁻¹` with
//! `s_i = (E|x_i|)^α`, the exponent `α` grid-searched to minimize the
//! calibration output error.

use crate::common::{effective_group, group_quant_size_bytes, QuantResult, WeightQuantizer};
use crate::rtn::RtnQuantizer;
use edkm_tensor::{ops as t, DType, Tensor};

/// The AWQ quantizer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AwqQuantizer {
    bits: u8,
    group: usize,
    grid: usize,
}

impl AwqQuantizer {
    /// AWQ at `bits` with `group` columns per scale (paper setting `g128`)
    /// and an 11-point α grid (0.0, 0.1, …, 1.0).
    pub fn new(bits: u8, group: usize) -> Self {
        assert!((1..=8).contains(&bits), "awq bits must be 1..=8");
        AwqQuantizer {
            bits,
            group,
            grid: 11,
        }
    }

    /// Mean absolute activation per input channel.
    fn channel_salience(x: &Tensor) -> Vec<f32> {
        let cols = *x.shape().last().expect("calib rank");
        let rows = x.numel() / cols;
        let data = x.to_vec();
        let mut s = vec![0.0f32; cols];
        for row in data.chunks(cols) {
            for (acc, &v) in s.iter_mut().zip(row) {
                *acc += v.abs();
            }
        }
        for acc in &mut s {
            *acc /= rows.max(1) as f32;
        }
        s
    }

    fn scale_quant_unscale(&self, w: &Tensor, scales: &[f32]) -> Tensor {
        let (rows, cols) = (w.shape()[0], w.shape()[1]);
        let mut scaled = w.to_vec();
        for r in 0..rows {
            for c in 0..cols {
                scaled[r * cols + c] *= scales[c];
            }
        }
        let st = Tensor::from_vec(scaled, &[rows, cols], DType::F32, w.device());
        let dq = RtnQuantizer::new(self.bits, self.group).fake_quant_tensor(&st);
        let mut out = dq.to_vec();
        for r in 0..rows {
            for c in 0..cols {
                out[r * cols + c] /= scales[c];
            }
        }
        Tensor::from_vec(out, &[rows, cols], DType::F32, w.device())
    }

    fn output_mse(x: &Tensor, w: &Tensor, wq: &Tensor) -> f64 {
        let y = t::matmul(x, &w.t());
        let yq = t::matmul(x, &wq.t());
        y.to_vec()
            .iter()
            .zip(yq.to_vec())
            .map(|(a, b)| ((a - b) as f64).powi(2))
            .sum()
    }
}

impl WeightQuantizer for AwqQuantizer {
    fn method_name(&self) -> String {
        if self.group == 0 {
            "AWQ".to_string()
        } else {
            format!("AWQ g{}", self.group)
        }
    }

    fn bits(&self) -> u8 {
        self.bits
    }

    fn quantize(&self, w: &Tensor, calib: Option<&Tensor>) -> QuantResult {
        assert_eq!(w.rank(), 2, "AWQ expects [out, in]");
        let (rows, cols) = (w.shape()[0], w.shape()[1]);
        let g = effective_group(cols, self.group);
        // Scales fold into the preceding op at inference, so the size is
        // the plain RTN size.
        let size_bytes = group_quant_size_bytes(rows, cols, self.bits, g);

        let Some(x) = calib else {
            // No calibration: fall back to plain RTN (α = 0).
            return QuantResult {
                dequantized: RtnQuantizer::new(self.bits, self.group).fake_quant_tensor(w),
                size_bytes,
            };
        };

        let salience = Self::channel_salience(x);
        let mut best: Option<(f64, Tensor)> = None;
        for gi in 0..self.grid {
            let alpha = gi as f32 / (self.grid - 1) as f32;
            let scales: Vec<f32> = salience
                .iter()
                .map(|&s| s.max(1e-6).powf(alpha).clamp(1e-4, 1e4))
                .collect();
            let dq = self.scale_quant_unscale(w, &scales);
            let err = Self::output_mse(x, w, &dq);
            if best.as_ref().map(|(e, _)| err < *e).unwrap_or(true) {
                best = Some((err, dq));
            }
        }
        QuantResult {
            dequantized: best.expect("grid is non-empty").1,
            size_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edkm_tensor::{runtime, Device};

    fn anisotropic_calib(seed: u64) -> Tensor {
        runtime::reset();
        let scales: Vec<f32> = (0..16).map(|i| if i < 2 { 20.0 } else { 0.2 }).collect();
        let x = Tensor::randn(&[96, 16], DType::F32, Device::Cpu, seed);
        let xd: Vec<f32> = x
            .to_vec()
            .chunks(16)
            .flat_map(|row| {
                row.iter()
                    .zip(&scales)
                    .map(|(v, s)| v * s)
                    .collect::<Vec<_>>()
            })
            .collect();
        Tensor::from_vec(xd, &[96, 16], DType::F32, Device::Cpu)
    }

    #[test]
    fn name_and_bits() {
        assert_eq!(AwqQuantizer::new(3, 128).method_name(), "AWQ g128");
        assert_eq!(AwqQuantizer::new(4, 0).method_name(), "AWQ");
        assert_eq!(AwqQuantizer::new(4, 64).bits(), 4);
    }

    #[test]
    fn without_calibration_equals_rtn() {
        runtime::reset();
        let w = Tensor::randn(&[4, 16], DType::F32, Device::Cpu, 0);
        let awq = AwqQuantizer::new(3, 8).quantize(&w, None);
        let rtn = RtnQuantizer::new(3, 8).quantize(&w, None);
        assert!(t::allclose(&awq.dequantized, &rtn.dequantized, 0.0));
        assert_eq!(awq.size_bytes, rtn.size_bytes);
    }

    #[test]
    fn beats_rtn_with_outlier_channels() {
        let x = anisotropic_calib(1);
        let w = Tensor::randn(&[8, 16], DType::F32, Device::Cpu, 2);
        let awq = AwqQuantizer::new(3, 0).quantize(&w, Some(&x));
        let rtn = RtnQuantizer::new(3, 0).quantize(&w, None);
        let e_awq = AwqQuantizer::output_mse(&x, &w, &awq.dequantized);
        let e_rtn = AwqQuantizer::output_mse(&x, &w, &rtn.dequantized);
        assert!(
            e_awq <= e_rtn,
            "AWQ must not lose to RTN on calibration: {e_awq} vs {e_rtn}"
        );
        // And with strong outliers it should win strictly.
        assert!(
            e_awq < e_rtn * 0.95,
            "expected a strict win: {e_awq} vs {e_rtn}"
        );
    }

    #[test]
    fn alpha_zero_included_in_grid_guarantees_no_regression() {
        // Even with pathological salience the grid contains α = 0 (plain
        // RTN), so the chosen error is never above RTN's.
        let x = anisotropic_calib(3);
        let w = Tensor::randn(&[4, 16], DType::F32, Device::Cpu, 4);
        let awq = AwqQuantizer::new(2, 0).quantize(&w, Some(&x));
        let rtn = RtnQuantizer::new(2, 0).quantize(&w, None);
        let e_awq = AwqQuantizer::output_mse(&x, &w, &awq.dequantized);
        let e_rtn = AwqQuantizer::output_mse(&x, &w, &rtn.dequantized);
        assert!(e_awq <= e_rtn + 1e-6);
    }

    #[test]
    fn salience_measures_channel_magnitude() {
        let x = anisotropic_calib(5);
        let s = AwqQuantizer::channel_salience(&x);
        assert!(s[0] > s[10] * 10.0, "outlier channels must dominate: {s:?}");
    }
}
