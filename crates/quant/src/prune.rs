//! Magnitude pruning — the "pruning" branch of the paper's Fig. 1 taxonomy
//! of weight optimization systems (and the sparsification the introduction
//! lists alongside quantization and clustering).
//!
//! Two granularities:
//!
//! * **Unstructured** — keep the largest-magnitude fraction of all weights;
//!   serialized as a 1-bit/weight mask plus 16-bit survivors.
//! * **N:M semi-structured** — in every group of `m` consecutive weights
//!   keep the `n` largest (the 2:4 pattern modern accelerators execute);
//!   serialized as `n` 16-bit survivors plus `n·log2(m)` index bits per
//!   group.

use edkm_tensor::{DType, Device, Tensor};

/// Pruning granularity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PruneGranularity {
    /// Global magnitude threshold at the given sparsity in `[0, 1)`.
    Unstructured {
        /// Fraction of weights to zero out.
        sparsity: f64,
    },
    /// Keep `n` of every `m` consecutive weights (e.g. 2:4).
    NOfM {
        /// Survivors per group.
        n: usize,
        /// Group size.
        m: usize,
    },
}

/// Magnitude pruner configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MagnitudePruner {
    granularity: PruneGranularity,
}

/// Result of pruning one weight tensor.
#[derive(Debug, Clone)]
pub struct PruneResult {
    /// Pruned weights (zeros where masked), same shape as the input.
    pub pruned: Tensor,
    /// Keep-mask, one flag per element in row-major order.
    pub mask: Vec<bool>,
    /// Fraction of weights actually zeroed.
    pub achieved_sparsity: f64,
    /// Serialized bytes of the sparse form (see module docs).
    pub size_bytes: usize,
}

impl MagnitudePruner {
    /// Unstructured pruner at `sparsity` (fraction zeroed).
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ sparsity < 1`.
    pub fn unstructured(sparsity: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&sparsity),
            "sparsity must be in [0, 1), got {sparsity}"
        );
        MagnitudePruner {
            granularity: PruneGranularity::Unstructured { sparsity },
        }
    }

    /// N:M semi-structured pruner (keep `n` of every `m`).
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ n < m`.
    pub fn n_of_m(n: usize, m: usize) -> Self {
        assert!(n >= 1 && n < m, "need 1 <= n < m, got {n}:{m}");
        MagnitudePruner {
            granularity: PruneGranularity::NOfM { n, m },
        }
    }

    /// The 2:4 pattern supported by sparse tensor cores.
    pub fn two_of_four() -> Self {
        Self::n_of_m(2, 4)
    }

    /// The configured granularity.
    pub fn granularity(&self) -> PruneGranularity {
        self.granularity
    }

    /// Prune `w` by magnitude.
    ///
    /// # Panics
    ///
    /// For N:M, panics if `w.numel()` is not divisible by `m`.
    pub fn prune(&self, w: &Tensor) -> PruneResult {
        let data = w.to_vec();
        let n_elems = data.len();
        let mask = match self.granularity {
            PruneGranularity::Unstructured { sparsity } => {
                let drop = ((n_elems as f64) * sparsity).round() as usize;
                let mut order: Vec<usize> = (0..n_elems).collect();
                order.sort_by(|&a, &b| {
                    data[a]
                        .abs()
                        .partial_cmp(&data[b].abs())
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
                let mut mask = vec![true; n_elems];
                for &i in order.iter().take(drop) {
                    mask[i] = false;
                }
                mask
            }
            PruneGranularity::NOfM { n, m } => {
                assert_eq!(
                    n_elems % m,
                    0,
                    "{n_elems} weights do not split into groups of {m}"
                );
                let mut mask = vec![false; n_elems];
                for g in 0..n_elems / m {
                    let base = g * m;
                    let mut order: Vec<usize> = (0..m).collect();
                    order.sort_by(|&a, &b| {
                        data[base + b]
                            .abs()
                            .partial_cmp(&data[base + a].abs())
                            .unwrap_or(std::cmp::Ordering::Equal)
                    });
                    for &j in order.iter().take(n) {
                        mask[base + j] = true;
                    }
                }
                mask
            }
        };

        let pruned_vals: Vec<f32> = data
            .iter()
            .zip(&mask)
            .map(|(&v, &keep)| if keep { v } else { 0.0 })
            .collect();
        let zeroed = mask.iter().filter(|&&k| !k).count();
        let size_bytes = self.size_bytes(n_elems, n_elems - zeroed);
        PruneResult {
            pruned: Tensor::from_vec(pruned_vals, w.shape(), DType::F32, Device::Cpu),
            mask,
            achieved_sparsity: zeroed as f64 / n_elems.max(1) as f64,
            size_bytes,
        }
    }

    /// Serialized bytes for `nnz` survivors out of `n` weights.
    fn size_bytes(&self, n: usize, nnz: usize) -> usize {
        match self.granularity {
            // 1-bit mask + 16-bit survivors.
            PruneGranularity::Unstructured { .. } => n.div_ceil(8) + nnz * 2,
            // Per group: n survivors at 16 bits + n indices of log2(m) bits.
            PruneGranularity::NOfM { n: keep, m } => {
                let groups = n / m;
                let idx_bits = (m as f64).log2().ceil() as usize;
                groups * keep * 2 + (groups * keep * idx_bits).div_ceil(8)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn toy() -> Tensor {
        Tensor::from_vec(
            vec![0.9, -0.1, 0.05, -0.8, 0.3, 0.02, -0.6, 0.4],
            &[2, 4],
            DType::F32,
            Device::Cpu,
        )
    }

    #[test]
    fn unstructured_half_drops_smallest() {
        let r = MagnitudePruner::unstructured(0.5).prune(&toy());
        assert_eq!(r.achieved_sparsity, 0.5);
        let v = r.pruned.to_vec();
        // Largest four magnitudes survive: 0.9, -0.8, -0.6, 0.4.
        assert_eq!(v, vec![0.9, 0.0, 0.0, -0.8, 0.0, 0.0, -0.6, 0.4]);
        assert_eq!(r.pruned.shape(), &[2, 4]);
    }

    #[test]
    fn zero_sparsity_is_identity() {
        let r = MagnitudePruner::unstructured(0.0).prune(&toy());
        assert_eq!(r.achieved_sparsity, 0.0);
        assert_eq!(r.pruned.to_vec(), toy().to_vec());
        assert!(r.mask.iter().all(|&k| k));
    }

    #[test]
    fn two_of_four_keeps_two_per_group() {
        let r = MagnitudePruner::two_of_four().prune(&toy());
        assert_eq!(r.achieved_sparsity, 0.5);
        for g in 0..2 {
            let kept = r.mask[g * 4..(g + 1) * 4].iter().filter(|&&k| k).count();
            assert_eq!(kept, 2, "group {g}");
        }
        // Group 0 keeps 0.9 and -0.8; group 1 keeps -0.6 and 0.4.
        assert_eq!(
            r.pruned.to_vec(),
            vec![0.9, 0.0, 0.0, -0.8, 0.0, 0.0, -0.6, 0.4]
        );
    }

    #[test]
    fn sparse_sizes_beat_dense_at_high_sparsity() {
        let w = Tensor::randn(&[64, 64], DType::F32, Device::Cpu, 0);
        let dense_16bit = 64 * 64 * 2;
        let r90 = MagnitudePruner::unstructured(0.9).prune(&w);
        assert!(
            r90.size_bytes < dense_16bit / 3,
            "90% sparse ≈ mask + 10% values"
        );
        let r24 = MagnitudePruner::two_of_four().prune(&w);
        // 2:4 = half the values + 2 index bits each.
        assert!(r24.size_bytes < dense_16bit * 3 / 4);
        assert!(r24.size_bytes > dense_16bit / 2, "indices are not free");
    }

    #[test]
    fn unstructured_mse_grows_with_sparsity() {
        let w = Tensor::randn(&[32, 32], DType::F32, Device::Cpu, 1);
        let mse = |s: f64| {
            let r = MagnitudePruner::unstructured(s).prune(&w);
            let d = r.pruned.to_vec();
            w.to_vec()
                .iter()
                .zip(&d)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f32>()
        };
        let (m25, m50, m75) = (mse(0.25), mse(0.5), mse(0.75));
        assert!(m25 < m50 && m50 < m75, "{m25} {m50} {m75}");
    }

    #[test]
    #[should_panic(expected = "sparsity must be")]
    fn full_sparsity_rejected() {
        MagnitudePruner::unstructured(1.0);
    }

    #[test]
    #[should_panic(expected = "need 1 <= n < m")]
    fn degenerate_nm_rejected() {
        MagnitudePruner::n_of_m(4, 4);
    }

    #[test]
    #[should_panic(expected = "groups of 4")]
    fn ragged_nm_rejected() {
        let w = Tensor::randn(&[7], DType::F32, Device::Cpu, 2);
        MagnitudePruner::two_of_four().prune(&w);
    }

    proptest! {
        /// Achieved sparsity tracks the request within one element, the
        /// mask matches the zeros, and survivors keep their exact values.
        #[test]
        fn prop_unstructured_contract(
            n in 1usize..200,
            s in 0.0f64..0.95,
            seed in 0u64..50,
        ) {
            let w = Tensor::randn(&[n], DType::F32, Device::Cpu, seed);
            let r = MagnitudePruner::unstructured(s).prune(&w);
            let want = ((n as f64) * s).round() as usize;
            let zeroed = r.mask.iter().filter(|&&k| !k).count();
            prop_assert_eq!(zeroed, want);
            let orig = w.to_vec();
            for (i, (&keep, &v)) in r.mask.iter().zip(r.pruned.to_vec().iter()).enumerate() {
                if keep {
                    prop_assert_eq!(v, orig[i]);
                } else {
                    prop_assert_eq!(v, 0.0);
                }
            }
        }

        /// Every m-group of an N:M pruning keeps exactly n survivors, and
        /// no dropped weight in a group beats a kept one by magnitude.
        #[test]
        fn prop_nm_group_contract(groups in 1usize..50, seed in 0u64..50) {
            let w = Tensor::randn(&[groups * 4], DType::F32, Device::Cpu, seed);
            let r = MagnitudePruner::two_of_four().prune(&w);
            let orig = w.to_vec();
            for g in 0..groups {
                let grp = &r.mask[g * 4..(g + 1) * 4];
                prop_assert_eq!(grp.iter().filter(|&&k| k).count(), 2);
                let min_kept = (0..4)
                    .filter(|&j| grp[j])
                    .map(|j| orig[g * 4 + j].abs())
                    .fold(f32::INFINITY, f32::min);
                let max_dropped = (0..4)
                    .filter(|&j| !grp[j])
                    .map(|j| orig[g * 4 + j].abs())
                    .fold(0.0f32, f32::max);
                prop_assert!(min_kept >= max_dropped);
            }
        }
    }
}
