//! Shared quantizer interface and group-affine helpers.

use edkm_tensor::Tensor;

/// Output of quantizing one weight matrix.
#[derive(Debug, Clone)]
pub struct QuantResult {
    /// Dequantized ("fake-quantized") weights, same shape as the input.
    pub dequantized: Tensor,
    /// Serialized size: packed codes + quantization parameters.
    pub size_bytes: usize,
}

/// A post-training weight quantizer for `[out, in]` projection matrices.
pub trait WeightQuantizer {
    /// Method name as it appears in Table 3 ("RTN", "GPTQ g128", …).
    fn method_name(&self) -> String;

    /// Code bit width.
    fn bits(&self) -> u8;

    /// Quantize `w`, optionally using calibration activations `calib`
    /// (`[n, in]`, the inputs the projection sees).
    fn quantize(&self, w: &Tensor, calib: Option<&Tensor>) -> QuantResult;
}

/// Affine min–max quantize a row-segment in place: returns the dequantized
/// values of `vals` at `bits`.
pub fn affine_fake_quant(vals: &[f32], bits: u8) -> Vec<f32> {
    let levels = ((1u32 << bits) - 1) as f32;
    let lo = vals.iter().cloned().fold(f32::INFINITY, f32::min);
    let hi = vals.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let scale = if hi > lo { (hi - lo) / levels } else { 1.0 };
    vals.iter()
        .map(|&v| {
            let q = ((v - lo) / scale).round().clamp(0.0, levels);
            q * scale + lo
        })
        .collect()
}

/// Serialized bytes of a `[rows, cols]` matrix quantized at `bits` with
/// per-(row, group) affine params stored at 16 bits each.
pub fn group_quant_size_bytes(rows: usize, cols: usize, bits: u8, group: usize) -> usize {
    let codes = (rows * cols * bits as usize).div_ceil(8);
    let groups_per_row = cols.div_ceil(group);
    codes + rows * groups_per_row * 2 * 2 // scale + zero, f16 each
}

/// Effective group size: `group = 0` means one group per row.
pub fn effective_group(cols: usize, group: usize) -> usize {
    if group == 0 || group > cols {
        cols
    } else {
        group
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn affine_fake_quant_error_bound() {
        let vals = vec![-1.0, -0.3, 0.2, 0.9];
        let dq = affine_fake_quant(&vals, 4);
        let scale = (0.9 - (-1.0)) / 15.0;
        for (v, d) in vals.iter().zip(&dq) {
            assert!((v - d).abs() <= scale / 2.0 + 1e-6);
        }
    }

    #[test]
    fn affine_preserves_extremes() {
        let vals = vec![-2.0, 0.0, 3.0];
        let dq = affine_fake_quant(&vals, 2);
        assert_eq!(dq[0], -2.0);
        assert_eq!(dq[2], 3.0);
    }

    #[test]
    fn constant_segment_is_exact() {
        let dq = affine_fake_quant(&[0.7; 10], 3);
        assert!(dq.iter().all(|&v| v == 0.7));
    }

    #[test]
    fn size_formula() {
        // 128 cols at 4 bits, group 128, 4 rows: 256B codes + 4 groups × 4B.
        assert_eq!(group_quant_size_bytes(4, 128, 4, 128), 256 + 16);
        assert_eq!(effective_group(64, 128), 64);
        assert_eq!(effective_group(256, 128), 128);
        assert_eq!(effective_group(256, 0), 256);
    }

    proptest! {
        /// Quantization error is at most half a step for any segment.
        #[test]
        fn prop_affine_half_step(vals in prop::collection::vec(-10.0f32..10.0, 1..64), bits in 2u8..8) {
            let dq = affine_fake_quant(&vals, bits);
            let lo = vals.iter().cloned().fold(f32::INFINITY, f32::min);
            let hi = vals.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let levels = ((1u32 << bits) - 1) as f32;
            let step = if hi > lo { (hi - lo) / levels } else { 1.0 };
            for (v, d) in vals.iter().zip(&dq) {
                prop_assert!((v - d).abs() <= step / 2.0 + 1e-4);
            }
        }
    }
}
