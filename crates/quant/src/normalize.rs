//! Weight normalization — the "normalization" branch of the paper's Fig. 1
//! taxonomy of weight optimization systems.
//!
//! A projection matrix decomposes per output row as `W_r = g_r · V_r /
//! ‖V_r‖` (Salimans & Kingma's weight norm). The decomposition is useful
//! before quantization: the direction matrix `V/‖V‖` has unit-norm rows, so
//! one group-affine code fits all rows, while the per-row gains `g` carry
//! the scale at full precision (`rows × 2` bytes — negligible).

use crate::common::affine_fake_quant;
use edkm_tensor::{DType, Device, Tensor};

/// A row-wise weight-norm decomposition `W = diag(g) · D`.
#[derive(Debug, Clone)]
pub struct WeightNormed {
    gains: Vec<f32>,
    directions: Tensor,
}

impl WeightNormed {
    /// Decompose a `[rows, cols]` matrix into per-row gains and unit-norm
    /// direction rows. Zero rows get gain 0 and an unchanged direction.
    ///
    /// # Panics
    ///
    /// Panics if `w` is not rank 2.
    pub fn decompose(w: &Tensor) -> Self {
        assert_eq!(w.rank(), 2, "weight norm expects a [rows, cols] matrix");
        let (rows, cols) = (w.shape()[0], w.shape()[1]);
        let data = w.to_vec();
        let mut gains = Vec::with_capacity(rows);
        let mut dirs = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            let row = &data[r * cols..(r + 1) * cols];
            let norm = row.iter().map(|v| v * v).sum::<f32>().sqrt();
            gains.push(norm);
            if norm > 0.0 {
                dirs.extend(row.iter().map(|v| v / norm));
            } else {
                dirs.extend_from_slice(row);
            }
        }
        WeightNormed {
            gains,
            directions: Tensor::from_vec(dirs, &[rows, cols], DType::F32, Device::Cpu),
        }
    }

    /// Per-row gains `g_r = ‖W_r‖`.
    pub fn gains(&self) -> &[f32] {
        &self.gains
    }

    /// The unit-row direction matrix.
    pub fn directions(&self) -> &Tensor {
        &self.directions
    }

    /// Recompose `diag(g) · D` — exact inverse of [`Self::decompose`] up to
    /// floating-point rounding.
    pub fn recompose(&self) -> Tensor {
        let (rows, cols) = (self.directions.shape()[0], self.directions.shape()[1]);
        let d = self.directions.to_vec();
        let out: Vec<f32> = (0..rows * cols)
            .map(|i| d[i] * self.gains[i / cols])
            .collect();
        Tensor::from_vec(out, &[rows, cols], DType::F32, Device::Cpu)
    }

    /// Fake-quantize the *directions* at `bits` (whole-matrix affine — the
    /// rows share scale by construction) and recompose. Returns the
    /// quantized weights plus the serialized size (codes + one affine pair
    /// + 16-bit gains).
    pub fn quantize_directions(&self, bits: u8) -> (Tensor, usize) {
        let d = self.directions.to_vec();
        let dq = affine_fake_quant(&d, bits);
        let (rows, cols) = (self.directions.shape()[0], self.directions.shape()[1]);
        let out: Vec<f32> = (0..rows * cols)
            .map(|i| dq[i] * self.gains[i / cols])
            .collect();
        let size = (rows * cols * bits as usize).div_ceil(8) // codes
            + 4 // one scale+zero pair at 16 bits
            + rows * 2; // gains at 16 bits
        (
            Tensor::from_vec(out, &[rows, cols], DType::F32, Device::Cpu),
            size,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edkm_tensor::ops::allclose;
    use proptest::prelude::*;

    #[test]
    fn decompose_recompose_roundtrips() {
        let w = Tensor::randn(&[8, 16], DType::F32, Device::Cpu, 0);
        let wn = WeightNormed::decompose(&w);
        assert!(allclose(&wn.recompose(), &w, 1e-6));
    }

    #[test]
    fn directions_have_unit_rows() {
        let w = Tensor::randn(&[6, 32], DType::F32, Device::Cpu, 1);
        let wn = WeightNormed::decompose(&w);
        let d = wn.directions().to_vec();
        for r in 0..6 {
            let norm: f32 = d[r * 32..(r + 1) * 32].iter().map(|v| v * v).sum();
            assert!((norm.sqrt() - 1.0).abs() < 1e-5, "row {r}: {}", norm.sqrt());
        }
    }

    #[test]
    fn gains_are_row_norms() {
        let w = Tensor::from_vec(vec![3.0, 4.0, 0.0, 0.0], &[2, 2], DType::F32, Device::Cpu);
        let wn = WeightNormed::decompose(&w);
        assert!((wn.gains()[0] - 5.0).abs() < 1e-6);
        assert_eq!(wn.gains()[1], 0.0);
        // Zero row recomposes to zero, no NaN.
        assert_eq!(wn.recompose().to_vec()[2], 0.0);
        assert!(wn.directions().to_vec().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn normalized_quantization_handles_scale_outlier_rows() {
        // One row 100× larger than the rest: plain whole-matrix affine
        // quantization destroys the small rows; weight-norm + direction
        // quantization preserves them.
        let mut data = Vec::new();
        for r in 0..8 {
            let scale = if r == 0 { 10.0 } else { 0.1 };
            for c in 0..16 {
                data.push(scale * ((r * 16 + c) as f32 * 0.37).sin());
            }
        }
        let w = Tensor::from_vec(data.clone(), &[8, 16], DType::F32, Device::Cpu);

        let plain = affine_fake_quant(&data, 4);
        let plain_small_mse: f32 = data[16..]
            .iter()
            .zip(&plain[16..])
            .map(|(a, b)| (a - b) * (a - b))
            .sum();

        let wn = WeightNormed::decompose(&w);
        let (q, _) = wn.quantize_directions(4);
        let qv = q.to_vec();
        let wn_small_mse: f32 = data[16..]
            .iter()
            .zip(&qv[16..])
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        assert!(
            wn_small_mse < plain_small_mse / 10.0,
            "weight norm must rescue small rows: {wn_small_mse} vs {plain_small_mse}"
        );
    }

    #[test]
    fn quantize_directions_size_accounting() {
        let w = Tensor::randn(&[4, 64], DType::F32, Device::Cpu, 2);
        let wn = WeightNormed::decompose(&w);
        let (_, size) = wn.quantize_directions(4);
        assert_eq!(size, (4 * 64 * 4) / 8 + 4 + 4 * 2);
    }

    #[test]
    #[should_panic(expected = "rows, cols")]
    fn rejects_non_matrix() {
        WeightNormed::decompose(&Tensor::randn(&[8], DType::F32, Device::Cpu, 3));
    }

    proptest! {
        /// decompose → recompose is the identity within rounding, for any
        /// matrix including ones with tiny and huge rows.
        #[test]
        fn prop_roundtrip(rows in 1usize..10, cols in 1usize..20, seed in 0u64..30) {
            let w = Tensor::randn(&[rows, cols], DType::F32, Device::Cpu, seed)
                .map(|v| v * 3.0);
            let wn = WeightNormed::decompose(&w);
            let back = wn.recompose();
            let (a, b) = (w.to_vec(), back.to_vec());
            for (x, y) in a.iter().zip(&b) {
                prop_assert!((x - y).abs() <= 1e-5 * x.abs().max(1.0));
            }
        }
    }
}
