//! # edkm-quant
//!
//! The baseline compression schemes the paper compares eDKM against in
//! Table 3, implemented for real (not stubbed):
//!
//! * [`rtn`] — round-to-nearest uniform quantization with per-group affine
//!   scales.
//! * [`gptq`] — Hessian-based one-shot quantization (OBQ column sweep with
//!   Cholesky-factored inverse Hessian and error propagation), after
//!   Frantar et al.
//! * [`awq`] — activation-aware weight quantization: per-channel scales
//!   `s_i = E|x_i|^α` grid-searched to minimize calibration output error,
//!   after Lin et al.
//! * [`smoothquant`] — difficulty migration between activations and
//!   weights (`s_i = max|x_i|^α / max|w_i|^{1−α}`).
//! * [`qat`] — LLM-QAT: data-free quantization-aware training with a
//!   straight-through estimator on model-generated data.
//!
//! [`model_quant`] applies any of these to a whole `edkm-nn` model with
//! tapped calibration activations, and accounts serialized model size the
//! way Table 3's "Model Size (GB)" column does.
//!
//! Rounding out Fig. 1's taxonomy of weight optimization systems (beyond
//! the Table 3 comparators):
//!
//! * [`prune`] — magnitude pruning, unstructured and N:M semi-structured.
//! * [`normalize`] — row-wise weight normalization (`W = diag(g) · D`).

pub mod awq;
pub mod common;
pub mod gptq;
pub mod linalg;
pub mod model_quant;
pub mod normalize;
pub mod prune;
pub mod qat;
pub mod rtn;
pub mod smoothquant;

pub use awq::AwqQuantizer;
pub use common::{QuantResult, WeightQuantizer};
pub use gptq::GptqQuantizer;
pub use model_quant::{capture_calibration, quantize_model, ModelQuantReport};
pub use normalize::WeightNormed;
pub use prune::{MagnitudePruner, PruneGranularity, PruneResult};
pub use qat::{QatPipeline, QatSpec};
pub use rtn::RtnQuantizer;
pub use smoothquant::SmoothQuantQuantizer;
