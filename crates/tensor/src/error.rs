//! Error types for fallible tensor operations.

use crate::{DType, Device};

/// Error returned by fallible tensor operations.
///
/// Shape errors in hot-path arithmetic panic instead (documented per method),
/// mirroring the convention of `ndarray`/`torch`; `TensorError` is reserved
/// for conditions a caller can reasonably recover from or that depend on
/// runtime configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// An operation required a 16-bit dtype (e.g. extracting bit patterns).
    Not16Bit {
        /// The dtype the tensor actually had.
        actual: DType,
    },
    /// An operation required the tensor to live on a particular device.
    WrongDevice {
        /// Device the operation expected.
        expected: Device,
        /// Device the tensor actually lives on.
        actual: Device,
    },
    /// A reshape was requested to a shape with a different element count.
    ShapeMismatch {
        /// Element count of the source.
        from: usize,
        /// Element count of the requested shape.
        to: usize,
    },
    /// Invalid axis for the given rank.
    InvalidAxis {
        /// Requested axis.
        axis: usize,
        /// Tensor rank.
        rank: usize,
    },
}

impl std::fmt::Display for TensorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TensorError::Not16Bit { actual } => {
                write!(f, "operation requires a 16-bit dtype, tensor is {actual}")
            }
            TensorError::WrongDevice { expected, actual } => {
                write!(f, "tensor expected on {expected}, found on {actual}")
            }
            TensorError::ShapeMismatch { from, to } => {
                write!(
                    f,
                    "cannot reshape {from} elements into a {to}-element shape"
                )
            }
            TensorError::InvalidAxis { axis, rank } => {
                write!(f, "axis {axis} out of range for rank {rank}")
            }
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = TensorError::Not16Bit { actual: DType::F32 };
        assert!(e.to_string().contains("16-bit"));
        let e = TensorError::WrongDevice {
            expected: Device::Cpu,
            actual: Device::gpu(),
        };
        assert!(e.to_string().contains("cpu"));
        assert!(e.to_string().contains("gpu:0"));
        let e = TensorError::ShapeMismatch { from: 6, to: 8 };
        assert!(e.to_string().contains('6'));
        let e = TensorError::InvalidAxis { axis: 3, rank: 2 };
        assert!(e.to_string().contains("axis 3"));
    }

    #[test]
    fn is_std_error_send_sync() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<TensorError>();
    }
}
