//! Forward-graph provenance for storage-invariant operations.
//!
//! Section 2.1 of the paper: before copying a tensor to the CPU, eDKM "turns
//! to the forward graph and checks if there exists another tensor that is
//! already on CPU and is reachable via only data-storage invariant operations
//! (i.e., view, transpose, ...) from the new tensor within a few hops".
//!
//! This module records exactly that graph: every view-like operation stamps
//! its result with a [`Provenance`] edge pointing at the parent tensor's
//! metadata, and the marshaling layer (in `edkm-core`) walks these edges.

use crate::layout::Layout;
use crate::storage::StorageId;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static NEXT_TENSOR_UID: AtomicU64 = AtomicU64::new(1);

/// Allocate a fresh tensor uid.
pub(crate) fn next_uid() -> u64 {
    NEXT_TENSOR_UID.fetch_add(1, Ordering::Relaxed)
}

/// A data-storage-invariant operation: the output's *contents* are fully
/// determined by the input's contents plus cheap metadata, so a CPU copy of
/// the input can stand in for a CPU copy of the output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvariantOp {
    /// `reshape`/`view`: same storage, new shape.
    Reshape {
        /// Target shape.
        shape: Vec<usize>,
    },
    /// Swap of two axes: same storage, permuted strides.
    Transpose {
        /// First axis.
        d0: usize,
        /// Second axis.
        d1: usize,
    },
    /// Materialization into row-major order. *New* storage, identical
    /// contents — the case that makes the graph walk necessary at all
    /// (a storage-id lookup alone would miss it).
    Contiguous,
    /// Contiguous sub-range along one axis; same storage.
    Slice {
        /// Axis being sliced.
        dim: usize,
        /// First index.
        start: usize,
        /// Length of the slice.
        len: usize,
    },
    /// Pure alias (e.g. `detach`): same storage, same layout.
    Alias,
}

impl InvariantOp {
    /// Short human-readable name (used in traces and reports).
    pub fn name(&self) -> &'static str {
        match self {
            InvariantOp::Reshape { .. } => "reshape",
            InvariantOp::Transpose { .. } => "transpose",
            InvariantOp::Contiguous => "contiguous",
            InvariantOp::Slice { .. } => "slice",
            InvariantOp::Alias => "alias",
        }
    }
}

impl std::fmt::Display for InvariantOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InvariantOp::Reshape { shape } => write!(f, "reshape{shape:?}"),
            InvariantOp::Transpose { d0, d1 } => write!(f, "transpose({d0},{d1})"),
            InvariantOp::Contiguous => write!(f, "contiguous"),
            InvariantOp::Slice { dim, start, len } => {
                write!(f, "slice(dim={dim},{start}..{})", start + len)
            }
            InvariantOp::Alias => write!(f, "alias"),
        }
    }
}

/// Edge in the forward graph from a tensor to the parent it was derived from
/// by a storage-invariant op.
#[derive(Debug, Clone)]
pub struct Provenance {
    /// The invariant operation that produced the child.
    pub op: InvariantOp,
    /// Metadata of the parent tensor.
    pub parent: Arc<TensorMeta>,
}

/// Identity + provenance metadata attached to every tensor.
///
/// `TensorMeta` is deliberately storage-free: holding it does not keep tensor
/// *data* alive, so recording provenance never leaks device memory.
#[derive(Debug)]
pub struct TensorMeta {
    /// Unique id of the tensor (not the storage).
    pub uid: u64,
    /// Storage the tensor was viewing when created.
    pub storage_id: StorageId,
    /// Layout of the tensor over its storage (snapshot at creation) — lets
    /// the marshaling layer reconstruct an ancestor found by the graph walk.
    pub layout: Layout,
    /// How this tensor was derived, if it came from an invariant op.
    pub provenance: Option<Provenance>,
}

impl TensorMeta {
    /// Metadata for a freshly materialized tensor (no provenance).
    pub fn root(storage_id: StorageId, layout: Layout) -> Arc<Self> {
        Arc::new(TensorMeta {
            uid: next_uid(),
            storage_id,
            layout,
            provenance: None,
        })
    }

    /// Metadata derived from `parent` through `op`.
    pub fn derived(
        storage_id: StorageId,
        layout: Layout,
        op: InvariantOp,
        parent: Arc<TensorMeta>,
    ) -> Arc<Self> {
        Arc::new(TensorMeta {
            uid: next_uid(),
            storage_id,
            layout,
            provenance: Some(Provenance { op, parent }),
        })
    }

    /// Walk ancestors through invariant ops, yielding `(ops-from-ancestor-to-
    /// self, ancestor-meta)` for each ancestor within `max_hops` hops.
    ///
    /// The first yielded element is the immediate parent (1 hop). The op list
    /// is ordered parent→child so it can be replayed onto a stand-in for the
    /// ancestor to reconstruct `self`.
    pub fn ancestors(&self, max_hops: usize) -> Vec<(Vec<InvariantOp>, Arc<TensorMeta>)> {
        let mut out = Vec::new();
        let mut ops_rev: Vec<InvariantOp> = Vec::new();
        let mut cur = self.provenance.clone();
        while let Some(prov) = cur {
            if out.len() >= max_hops {
                break;
            }
            ops_rev.push(prov.op.clone());
            // Replay order is ancestor→descendant, i.e. reverse of collection.
            let ops: Vec<InvariantOp> = ops_rev.iter().rev().cloned().collect();
            out.push((ops, Arc::clone(&prov.parent)));
            cur = prov.parent.provenance.clone();
        }
        out
    }
}

impl Drop for TensorMeta {
    fn drop(&mut self) {
        // Unwind long provenance chains iteratively so deep view pipelines
        // cannot overflow the stack through recursive Arc drops.
        let mut next = self.provenance.take().map(|p| p.parent);
        while let Some(meta) = next {
            match Arc::try_unwrap(meta) {
                Ok(mut m) => next = m.provenance.take().map(|p| p.parent),
                Err(_) => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sid(n: u64) -> StorageId {
        StorageId(n)
    }

    fn lay() -> Layout {
        Layout::contiguous(&[2, 4])
    }

    #[test]
    fn root_has_no_provenance() {
        let m = TensorMeta::root(sid(1), lay());
        assert!(m.provenance.is_none());
        assert!(m.ancestors(4).is_empty());
    }

    #[test]
    fn uids_are_unique() {
        let a = TensorMeta::root(sid(1), lay());
        let b = TensorMeta::root(sid(1), lay());
        assert_ne!(a.uid, b.uid);
    }

    #[test]
    fn ancestors_ordered_nearest_first() {
        // root --reshape--> a --transpose--> b
        let root = TensorMeta::root(sid(1), lay());
        let a = TensorMeta::derived(
            sid(1),
            lay(),
            InvariantOp::Reshape { shape: vec![4, 2] },
            Arc::clone(&root),
        );
        let b = TensorMeta::derived(
            sid(1),
            lay(),
            InvariantOp::Transpose { d0: 0, d1: 1 },
            Arc::clone(&a),
        );

        let anc = b.ancestors(4);
        assert_eq!(anc.len(), 2);
        assert_eq!(anc[0].1.uid, a.uid);
        assert_eq!(anc[0].0, vec![InvariantOp::Transpose { d0: 0, d1: 1 }]);
        assert_eq!(anc[1].1.uid, root.uid);
        // Replay order: first reshape (applied to root substitute), then transpose.
        assert_eq!(
            anc[1].0,
            vec![
                InvariantOp::Reshape { shape: vec![4, 2] },
                InvariantOp::Transpose { d0: 0, d1: 1 },
            ]
        );
    }

    #[test]
    fn hop_limit_truncates() {
        let mut m = TensorMeta::root(sid(1), lay());
        for _ in 0..6 {
            m = TensorMeta::derived(sid(1), lay(), InvariantOp::Alias, m);
        }
        assert_eq!(m.ancestors(4).len(), 4);
        assert_eq!(m.ancestors(0).len(), 0);
        assert_eq!(m.ancestors(10).len(), 6);
    }

    #[test]
    fn op_names_and_display() {
        assert_eq!(InvariantOp::Contiguous.name(), "contiguous");
        assert_eq!(InvariantOp::Alias.to_string(), "alias");
        assert_eq!(
            InvariantOp::Slice {
                dim: 0,
                start: 2,
                len: 3
            }
            .to_string(),
            "slice(dim=0,2..5)"
        );
        assert_eq!(
            InvariantOp::Reshape { shape: vec![2, 2] }.to_string(),
            "reshape[2, 2]"
        );
        assert_eq!(
            InvariantOp::Transpose { d0: 0, d1: 1 }.to_string(),
            "transpose(0,1)"
        );
    }
}
