//! Shape/stride/offset bookkeeping for strided tensor views.
//!
//! A [`Layout`] maps logical n-dimensional indices onto a flat storage
//! buffer. Views (reshape, transpose, slice) only manipulate the layout and
//! therefore never copy data — the property PyTorch exploits on-device, and
//! whose *loss* across device copies motivates the paper's marshaling scheme.

/// Strided layout of a tensor over its storage buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layout {
    shape: Vec<usize>,
    strides: Vec<usize>,
    offset: usize,
}

impl Layout {
    /// Row-major (C-contiguous) layout for `shape`, offset 0.
    pub fn contiguous(shape: &[usize]) -> Self {
        Layout {
            shape: shape.to_vec(),
            strides: contiguous_strides(shape),
            offset: 0,
        }
    }

    /// Layout from explicit parts.
    ///
    /// # Panics
    ///
    /// Panics if `shape` and `strides` have different lengths.
    pub fn new(shape: Vec<usize>, strides: Vec<usize>, offset: usize) -> Self {
        assert_eq!(
            shape.len(),
            strides.len(),
            "shape rank {} != strides rank {}",
            shape.len(),
            strides.len()
        );
        Layout {
            shape,
            strides,
            offset,
        }
    }

    /// Logical shape.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Strides in elements (not bytes).
    #[inline]
    pub fn strides(&self) -> &[usize] {
        &self.strides
    }

    /// Offset into storage, in elements.
    #[inline]
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// Number of dimensions.
    #[inline]
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Total number of logical elements.
    #[inline]
    pub fn numel(&self) -> usize {
        self.shape.iter().product()
    }

    /// `true` if logical order equals storage order with no gaps from
    /// `offset`.
    pub fn is_contiguous(&self) -> bool {
        let mut expect = 1usize;
        for (&s, &st) in self.shape.iter().rev().zip(self.strides.iter().rev()) {
            if s == 1 {
                continue; // stride is irrelevant for singleton dims
            }
            if st != expect {
                return false;
            }
            expect *= s;
        }
        true
    }

    /// Flat storage index of a logical index.
    ///
    /// # Panics
    ///
    /// Panics if `idx` has the wrong rank or is out of bounds.
    pub fn index(&self, idx: &[usize]) -> usize {
        assert_eq!(idx.len(), self.rank(), "index rank mismatch");
        let mut flat = self.offset;
        for ((&i, &s), &st) in idx.iter().zip(&self.shape).zip(&self.strides) {
            assert!(i < s, "index {i} out of bounds for dim of size {s}");
            flat += i * st;
        }
        flat
    }

    /// Layout with two dims swapped.
    ///
    /// # Panics
    ///
    /// Panics if either axis is out of range.
    pub fn transpose(&self, d0: usize, d1: usize) -> Layout {
        assert!(
            d0 < self.rank() && d1 < self.rank(),
            "transpose axes out of range"
        );
        let mut shape = self.shape.clone();
        let mut strides = self.strides.clone();
        shape.swap(d0, d1);
        strides.swap(d0, d1);
        Layout {
            shape,
            strides,
            offset: self.offset,
        }
    }

    /// Layout of a contiguous view reshaped to `shape`.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not contiguous or element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Layout {
        assert!(self.is_contiguous(), "reshape requires a contiguous layout");
        assert_eq!(
            self.numel(),
            shape.iter().product::<usize>(),
            "reshape element count mismatch"
        );
        Layout {
            shape: shape.to_vec(),
            strides: contiguous_strides(shape),
            offset: self.offset,
        }
    }

    /// Sub-view of `len` indices starting at `start` along `dim`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the dimension.
    pub fn slice(&self, dim: usize, start: usize, len: usize) -> Layout {
        assert!(dim < self.rank(), "slice dim out of range");
        assert!(
            start + len <= self.shape[dim],
            "slice {start}..{} out of range for dim of size {}",
            start + len,
            self.shape[dim]
        );
        let mut shape = self.shape.clone();
        shape[dim] = len;
        Layout {
            shape,
            strides: self.strides.clone(),
            offset: self.offset + start * self.strides[dim],
        }
    }

    /// Broadcast this layout to `target` following NumPy rules: size-1 dims
    /// (and missing leading dims) get stride 0.
    ///
    /// # Panics
    ///
    /// Panics if the shapes are not broadcast-compatible.
    pub fn broadcast_to(&self, target: &[usize]) -> Layout {
        assert!(
            target.len() >= self.rank(),
            "cannot broadcast rank {} to rank {}",
            self.rank(),
            target.len()
        );
        let pad = target.len() - self.rank();
        let mut strides = vec![0usize; target.len()];
        for i in 0..target.len() {
            if i < pad {
                continue;
            }
            let (s, st) = (self.shape[i - pad], self.strides[i - pad]);
            if s == target[i] {
                strides[i] = st;
            } else if s == 1 {
                strides[i] = 0;
            } else {
                panic!("cannot broadcast shape {:?} to {:?}", self.shape, target);
            }
        }
        Layout {
            shape: target.to_vec(),
            strides,
            offset: self.offset,
        }
    }

    /// Iterator over flat storage offsets in row-major logical order.
    pub fn iter_offsets(&self) -> OffsetIter<'_> {
        OffsetIter {
            layout: self,
            idx: vec![0; self.rank()],
            remaining: self.numel(),
            flat: self.offset,
        }
    }
}

/// Row-major strides for `shape`.
pub fn contiguous_strides(shape: &[usize]) -> Vec<usize> {
    let mut strides = vec![1usize; shape.len()];
    for i in (0..shape.len().saturating_sub(1)).rev() {
        strides[i] = strides[i + 1] * shape[i + 1];
    }
    strides
}

/// Broadcast two shapes to their common shape (NumPy rules).
///
/// # Panics
///
/// Panics if the shapes are incompatible.
pub fn broadcast_shapes(a: &[usize], b: &[usize]) -> Vec<usize> {
    let rank = a.len().max(b.len());
    let mut out = vec![0usize; rank];
    for i in 0..rank {
        let da = if i + a.len() >= rank {
            a[i + a.len() - rank]
        } else {
            1
        };
        let db = if i + b.len() >= rank {
            b[i + b.len() - rank]
        } else {
            1
        };
        out[i] = if da == db {
            da
        } else if da == 1 {
            db
        } else if db == 1 {
            da
        } else {
            panic!("shapes {a:?} and {b:?} are not broadcast-compatible");
        };
    }
    out
}

/// Iterator produced by [`Layout::iter_offsets`].
#[derive(Debug)]
pub struct OffsetIter<'a> {
    layout: &'a Layout,
    idx: Vec<usize>,
    remaining: usize,
    flat: usize,
}

impl<'a> Iterator for OffsetIter<'a> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.remaining == 0 {
            return None;
        }
        let out = self.flat;
        self.remaining -= 1;
        // Odometer increment from the last axis.
        for d in (0..self.layout.rank()).rev() {
            self.idx[d] += 1;
            self.flat += self.layout.strides[d];
            if self.idx[d] < self.layout.shape[d] {
                break;
            }
            self.flat -= self.idx[d] * self.layout.strides[d];
            self.idx[d] = 0;
        }
        Some(out)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for OffsetIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn contiguous_strides_examples() {
        assert_eq!(contiguous_strides(&[2, 3, 4]), vec![12, 4, 1]);
        assert_eq!(contiguous_strides(&[5]), vec![1]);
        assert_eq!(contiguous_strides(&[]), Vec::<usize>::new());
    }

    #[test]
    fn contiguity_detection() {
        let l = Layout::contiguous(&[2, 3]);
        assert!(l.is_contiguous());
        assert!(!l.transpose(0, 1).is_contiguous());
        // Singleton dims do not break contiguity regardless of stride.
        let l = Layout::new(vec![1, 4], vec![999, 1], 0);
        assert!(l.is_contiguous());
    }

    #[test]
    fn indexing() {
        let l = Layout::contiguous(&[2, 3]);
        assert_eq!(l.index(&[0, 0]), 0);
        assert_eq!(l.index(&[1, 2]), 5);
        let t = l.transpose(0, 1);
        assert_eq!(t.index(&[2, 1]), 5);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn indexing_out_of_bounds_panics() {
        Layout::contiguous(&[2, 3]).index(&[2, 0]);
    }

    #[test]
    fn transpose_swaps() {
        let l = Layout::contiguous(&[2, 3, 4]).transpose(0, 2);
        assert_eq!(l.shape(), &[4, 3, 2]);
        assert_eq!(l.strides(), &[1, 4, 12]);
    }

    #[test]
    fn reshape_preserves_offset() {
        let l = Layout::contiguous(&[4, 6]).slice(0, 1, 2);
        assert_eq!(l.offset(), 6);
        assert!(l.is_contiguous());
        let r = l.reshape(&[12]);
        assert_eq!(r.offset(), 6);
        assert_eq!(r.shape(), &[12]);
    }

    #[test]
    #[should_panic(expected = "contiguous")]
    fn reshape_noncontiguous_panics() {
        Layout::contiguous(&[2, 3]).transpose(0, 1).reshape(&[6]);
    }

    #[test]
    fn slice_moves_offset() {
        let l = Layout::contiguous(&[4, 3]).slice(0, 2, 2);
        assert_eq!(l.shape(), &[2, 3]);
        assert_eq!(l.offset(), 6);
        assert_eq!(l.index(&[0, 0]), 6);
    }

    #[test]
    fn broadcast_layout_zero_strides() {
        let l = Layout::contiguous(&[3]);
        let b = l.broadcast_to(&[2, 3]);
        assert_eq!(b.shape(), &[2, 3]);
        assert_eq!(b.strides(), &[0, 1]);
        let l1 = Layout::contiguous(&[2, 1]);
        let b1 = l1.broadcast_to(&[2, 5]);
        assert_eq!(b1.strides(), &[1, 0]);
    }

    #[test]
    #[should_panic(expected = "broadcast")]
    fn broadcast_incompatible_panics() {
        Layout::contiguous(&[3]).broadcast_to(&[2, 4]);
    }

    #[test]
    fn broadcast_shapes_rules() {
        assert_eq!(broadcast_shapes(&[2, 3], &[2, 3]), vec![2, 3]);
        assert_eq!(broadcast_shapes(&[2, 1], &[1, 5]), vec![2, 5]);
        assert_eq!(broadcast_shapes(&[3], &[4, 3]), vec![4, 3]);
        assert_eq!(broadcast_shapes(&[], &[2]), vec![2]);
    }

    #[test]
    fn offsets_iter_row_major() {
        let l = Layout::contiguous(&[2, 3]);
        let offs: Vec<_> = l.iter_offsets().collect();
        assert_eq!(offs, vec![0, 1, 2, 3, 4, 5]);
        let t = l.transpose(0, 1);
        let offs: Vec<_> = t.iter_offsets().collect();
        assert_eq!(offs, vec![0, 3, 1, 4, 2, 5]);
    }

    #[test]
    fn offsets_iter_scalar_rank0() {
        let l = Layout::contiguous(&[]);
        assert_eq!(l.numel(), 1);
        let offs: Vec<_> = l.iter_offsets().collect();
        assert_eq!(offs, vec![0]);
    }

    #[test]
    fn offsets_iter_sliced() {
        let l = Layout::contiguous(&[4, 2]).slice(0, 1, 2);
        let offs: Vec<_> = l.iter_offsets().collect();
        assert_eq!(offs, vec![2, 3, 4, 5]);
    }

    proptest! {
        /// iter_offsets visits exactly layout.index of each logical index in
        /// row-major order.
        #[test]
        fn prop_iter_matches_index(
            d0 in 1usize..5, d1 in 1usize..5, d2 in 1usize..5,
            t in 0usize..3,
        ) {
            let base = Layout::contiguous(&[d0, d1, d2]);
            let l = match t {
                0 => base,
                1 => base.transpose(0, 2),
                _ => base.transpose(1, 2),
            };
            let via_iter: Vec<_> = l.iter_offsets().collect();
            let mut via_index = Vec::new();
            for i in 0..l.shape()[0] {
                for j in 0..l.shape()[1] {
                    for k in 0..l.shape()[2] {
                        via_index.push(l.index(&[i, j, k]));
                    }
                }
            }
            prop_assert_eq!(via_iter, via_index);
        }

        /// Transposing twice is the identity.
        #[test]
        fn prop_double_transpose_identity(d0 in 1usize..6, d1 in 1usize..6) {
            let l = Layout::contiguous(&[d0, d1]);
            prop_assert_eq!(l.transpose(0, 1).transpose(0, 1), l);
        }

        /// A slice of the full range is the identity.
        #[test]
        fn prop_full_slice_identity(d0 in 1usize..6, d1 in 1usize..6) {
            let l = Layout::contiguous(&[d0, d1]);
            prop_assert_eq!(l.slice(0, 0, d0), l);
        }
    }
}
