//! Reference-counted data storage with device-pool accounting.
//!
//! A [`Storage`] is the unit of memory the paper's Table 1 talks about:
//! views share one storage; copying a tensor to another device necessarily
//! creates a *new* storage. Every storage registers its byte size with the
//! owning device's [`crate::pool::PoolCell`] at creation and deregisters on
//! drop, which is what makes "live bytes on CPU" an exact measurement.

use crate::pool::PoolCell;
use crate::{DType, Device};
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static NEXT_STORAGE_ID: AtomicU64 = AtomicU64::new(1);

/// Opaque identity of a storage buffer.
///
/// Two tensors with equal `StorageId` share the same underlying data (they
/// are views of one another).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StorageId(pub u64);

impl std::fmt::Display for StorageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "storage#{}", self.0)
    }
}

/// A flat `f32` buffer resident on a simulated device.
///
/// The buffer always holds `f32` values; the *device footprint* in bytes is
/// `len * dtype.size_bytes()` for the dtype the storage was created with, so
/// a BF16 tensor of N elements costs 2N device bytes even though the host
/// representation is wider.
#[derive(Debug)]
pub struct Storage {
    id: StorageId,
    device: Device,
    device_bytes: usize,
    data: RwLock<Vec<f32>>,
    pool: Arc<PoolCell>,
}

impl Storage {
    /// Allocate a storage holding `data` on `device`, charging
    /// `data.len() * dtype.size_bytes()` to `pool`.
    ///
    /// Callers normally go through [`crate::Tensor`] constructors, which fetch
    /// the pool from the active runtime (see [`crate::runtime::current`]).
    pub fn new(data: Vec<f32>, device: Device, dtype: DType, pool: Arc<PoolCell>) -> Arc<Self> {
        let device_bytes = data.len() * dtype.size_bytes();
        pool.alloc(device_bytes);
        Arc::new(Storage {
            id: StorageId(NEXT_STORAGE_ID.fetch_add(1, Ordering::Relaxed)),
            device,
            device_bytes,
            data: RwLock::new(data),
            pool,
        })
    }

    /// Identity of this buffer.
    #[inline]
    pub fn id(&self) -> StorageId {
        self.id
    }

    /// Device this buffer is resident on.
    #[inline]
    pub fn device(&self) -> Device {
        self.device
    }

    /// Bytes charged to the device pool.
    #[inline]
    pub fn device_bytes(&self) -> usize {
        self.device_bytes
    }

    /// Number of `f32` elements in the buffer.
    pub fn len(&self) -> usize {
        self.data.read().len()
    }

    /// `true` if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Run `f` with read access to the raw buffer.
    pub fn with_data<R>(&self, f: impl FnOnce(&[f32]) -> R) -> R {
        f(&self.data.read())
    }

    /// Run `f` with write access to the raw buffer.
    ///
    /// Mutation is visible through every view sharing this storage, exactly
    /// like an in-place op in PyTorch.
    pub fn with_data_mut<R>(&self, f: impl FnOnce(&mut [f32]) -> R) -> R {
        f(&mut self.data.write())
    }
}

impl Drop for Storage {
    fn drop(&mut self) {
        self.pool.free(self.device_bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> Arc<PoolCell> {
        Arc::new(PoolCell::new())
    }

    #[test]
    fn alloc_and_drop_account_bytes() {
        let p = pool();
        {
            let _s = Storage::new(vec![0.0; 100], Device::Cpu, DType::F32, Arc::clone(&p));
            assert_eq!(p.live_bytes(), 400);
        }
        assert_eq!(p.live_bytes(), 0);
        assert_eq!(p.peak_bytes(), 400);
    }

    #[test]
    fn bf16_charges_two_bytes_per_element() {
        let p = pool();
        let _s = Storage::new(vec![0.0; 100], Device::gpu(), DType::Bf16, Arc::clone(&p));
        assert_eq!(p.live_bytes(), 200);
    }

    #[test]
    fn ids_are_unique() {
        let p = pool();
        let a = Storage::new(vec![1.0], Device::Cpu, DType::F32, Arc::clone(&p));
        let b = Storage::new(vec![1.0], Device::Cpu, DType::F32, Arc::clone(&p));
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn data_access_roundtrip() {
        let p = pool();
        let s = Storage::new(vec![1.0, 2.0, 3.0], Device::Cpu, DType::F32, p);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        s.with_data_mut(|d| d[1] = 9.0);
        let sum: f32 = s.with_data(|d| d.iter().sum());
        assert_eq!(sum, 13.0);
    }

    #[test]
    fn shared_storage_sees_mutation() {
        let p = pool();
        let s = Storage::new(vec![0.0; 4], Device::Cpu, DType::F32, p);
        let s2 = Arc::clone(&s);
        s.with_data_mut(|d| d[0] = 7.0);
        assert_eq!(s2.with_data(|d| d[0]), 7.0);
    }

    #[test]
    fn display_of_id() {
        let p = pool();
        let s = Storage::new(vec![], Device::Cpu, DType::F32, p);
        assert!(s.id().to_string().starts_with("storage#"));
    }
}
