//! The `Tensor` type: a dtype-tagged strided view over a device storage.

use crate::layout::Layout;
use crate::provenance::{InvariantOp, TensorMeta};
use crate::storage::{Storage, StorageId};
use crate::{runtime, DType, Device, TensorError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Unique id of a tensor object (not its storage).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TensorId(pub u64);

/// An n-dimensional tensor on a simulated device.
///
/// `Tensor` is a cheap handle: cloning shares the storage. View operations
/// ([`Tensor::reshape`], [`Tensor::transpose`], [`Tensor::slice`]) share
/// storage and record [`crate::Provenance`] so the eDKM marshaling layer can
/// later walk the forward graph, exactly as described in Section 2.1 of the
/// paper.
///
/// # Example
///
/// ```
/// use edkm_tensor::{Tensor, DType, Device};
/// let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2], DType::F32, Device::Cpu);
/// let tt = t.transpose(0, 1);
/// assert_eq!(tt.to_vec(), vec![1.0, 3.0, 2.0, 4.0]);
/// assert_eq!(t.storage_id(), tt.storage_id()); // views share storage
/// ```
#[derive(Clone)]
pub struct Tensor {
    storage: Arc<Storage>,
    layout: Layout,
    dtype: DType,
    meta: Arc<TensorMeta>,
}

impl Tensor {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// Build a tensor from row-major `data`.
    ///
    /// Values are rounded to `dtype` (bit-exact for 16-bit dtypes).
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the product of `shape`.
    pub fn from_vec(mut data: Vec<f32>, shape: &[usize], dtype: DType, device: Device) -> Self {
        let numel: usize = shape.iter().product();
        assert_eq!(
            data.len(),
            numel,
            "data length {} != shape {:?}",
            data.len(),
            shape
        );
        if dtype.is_16bit() {
            for v in &mut data {
                *v = dtype.round(*v);
            }
        }
        Self::from_vec_unrounded(data, shape, dtype, device)
    }

    /// Internal: build without rounding (caller guarantees values are already
    /// representable in `dtype`).
    pub(crate) fn from_vec_unrounded(
        data: Vec<f32>,
        shape: &[usize],
        dtype: DType,
        device: Device,
    ) -> Self {
        let storage = Storage::new(data, device, dtype, runtime::pool(device));
        let layout = Layout::contiguous(shape);
        let meta = TensorMeta::root(storage.id(), layout.clone());
        Tensor {
            layout,
            storage,
            dtype,
            meta,
        }
    }

    /// All-zeros tensor.
    pub fn zeros(shape: &[usize], dtype: DType, device: Device) -> Self {
        Self::from_vec_unrounded(vec![0.0; shape.iter().product()], shape, dtype, device)
    }

    /// All-ones tensor.
    pub fn ones(shape: &[usize], dtype: DType, device: Device) -> Self {
        Self::full(1.0, shape, dtype, device)
    }

    /// Tensor filled with `value` (rounded to `dtype`).
    pub fn full(value: f32, shape: &[usize], dtype: DType, device: Device) -> Self {
        let v = dtype.round(value);
        Self::from_vec_unrounded(vec![v; shape.iter().product()], shape, dtype, device)
    }

    /// Rank-0 scalar tensor.
    pub fn scalar(value: f32, dtype: DType, device: Device) -> Self {
        Self::from_vec(vec![value], &[], dtype, device)
    }

    /// `[0, 1, ..., n-1]` as f32 values.
    pub fn arange(n: usize, dtype: DType, device: Device) -> Self {
        Self::from_vec((0..n).map(|i| i as f32).collect(), &[n], dtype, device)
    }

    /// Uniform samples in `[0, 1)`, seeded.
    pub fn rand(shape: &[usize], dtype: DType, device: Device, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = (0..shape.iter().product::<usize>())
            .map(|_| rng.gen::<f32>())
            .collect();
        Self::from_vec(data, shape, dtype, device)
    }

    /// Uniform samples in `[lo, hi)`, seeded.
    pub fn uniform(
        shape: &[usize],
        lo: f32,
        hi: f32,
        dtype: DType,
        device: Device,
        seed: u64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = (0..shape.iter().product::<usize>())
            .map(|_| lo + (hi - lo) * rng.gen::<f32>())
            .collect();
        Self::from_vec(data, shape, dtype, device)
    }

    /// Standard-normal samples (Box–Muller), seeded.
    pub fn randn(shape: &[usize], dtype: DType, device: Device, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = shape.iter().product::<usize>();
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            let u1: f32 = rng.gen::<f32>().max(1e-12);
            let u2: f32 = rng.gen();
            let r = (-2.0 * u1.ln()).sqrt();
            let (s, c) = (2.0 * std::f32::consts::PI * u2).sin_cos();
            data.push(r * c);
            if data.len() < n {
                data.push(r * s);
            }
        }
        Self::from_vec(data, shape, dtype, device)
    }

    /// Decode 16-bit patterns into a tensor of `dtype`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Not16Bit`] if `dtype` is [`DType::F32`], or
    /// [`TensorError::ShapeMismatch`] if `bits.len()` does not match `shape`.
    pub fn from_bits16(
        bits: &[u16],
        shape: &[usize],
        dtype: DType,
        device: Device,
    ) -> Result<Self, TensorError> {
        if !dtype.is_16bit() {
            return Err(TensorError::Not16Bit { actual: dtype });
        }
        let numel: usize = shape.iter().product();
        if bits.len() != numel {
            return Err(TensorError::ShapeMismatch {
                from: bits.len(),
                to: numel,
            });
        }
        let data = bits
            .iter()
            .map(|&b| dtype.decode16(b).expect("dtype checked 16-bit"))
            .collect();
        Ok(Self::from_vec_unrounded(data, shape, dtype, device))
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// Logical shape.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        self.layout.shape()
    }

    /// Number of dimensions.
    #[inline]
    pub fn rank(&self) -> usize {
        self.layout.rank()
    }

    /// Total element count.
    #[inline]
    pub fn numel(&self) -> usize {
        self.layout.numel()
    }

    /// Element dtype.
    #[inline]
    pub fn dtype(&self) -> DType {
        self.dtype
    }

    /// Device the storage lives on.
    #[inline]
    pub fn device(&self) -> Device {
        self.storage.device()
    }

    /// The underlying storage.
    #[inline]
    pub fn storage(&self) -> &Arc<Storage> {
        &self.storage
    }

    /// Identity of the underlying storage (views share it).
    #[inline]
    pub fn storage_id(&self) -> StorageId {
        self.storage.id()
    }

    /// Unique id of this tensor object.
    #[inline]
    pub fn uid(&self) -> TensorId {
        TensorId(self.meta.uid)
    }

    /// Provenance metadata (for the marshaling graph walk).
    #[inline]
    pub fn meta(&self) -> &Arc<TensorMeta> {
        &self.meta
    }

    /// The strided layout.
    #[inline]
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// `true` if the view is row-major contiguous.
    #[inline]
    pub fn is_contiguous(&self) -> bool {
        self.layout.is_contiguous()
    }

    /// Bytes this tensor's *view* occupies logically (`numel × dtype size`).
    #[inline]
    pub fn view_bytes(&self) -> usize {
        self.numel() * self.dtype.size_bytes()
    }

    // ------------------------------------------------------------------
    // Data access
    // ------------------------------------------------------------------

    /// Run `f` over the elements in row-major logical order.
    ///
    /// Contiguous tensors pass a zero-copy slice; strided views gather first.
    pub fn with_data<R>(&self, f: impl FnOnce(&[f32]) -> R) -> R {
        if self.is_contiguous() {
            let off = self.layout.offset();
            let n = self.numel();
            self.storage.with_data(|d| f(&d[off..off + n]))
        } else {
            let v = self.gather();
            f(&v)
        }
    }

    /// Copy the elements out in row-major logical order.
    pub fn to_vec(&self) -> Vec<f32> {
        if self.is_contiguous() {
            let off = self.layout.offset();
            let n = self.numel();
            self.storage.with_data(|d| d[off..off + n].to_vec())
        } else {
            self.gather()
        }
    }

    fn gather(&self) -> Vec<f32> {
        self.storage
            .with_data(|d| self.layout.iter_offsets().map(|o| d[o]).collect())
    }

    /// Element at a logical index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    pub fn get(&self, idx: &[usize]) -> f32 {
        let flat = self.layout.index(idx);
        self.storage.with_data(|d| d[flat])
    }

    /// Value of a single-element tensor.
    ///
    /// # Panics
    ///
    /// Panics if `numel() != 1`.
    pub fn item(&self) -> f32 {
        assert_eq!(self.numel(), 1, "item() requires a single-element tensor");
        self.storage
            .with_data(|d| d[self.layout.iter_offsets().next().unwrap()])
    }

    /// Mutate elements in place through `f` (applied in storage order over
    /// this view), re-rounding to the tensor dtype afterwards.
    ///
    /// The mutation is visible through all views sharing the storage.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not contiguous (in-place math on strided views
    /// is not needed by this crate's consumers and would hide aliasing bugs).
    pub fn apply_inplace(&self, mut f: impl FnMut(usize, f32) -> f32) {
        assert!(
            self.is_contiguous(),
            "apply_inplace requires contiguous tensor"
        );
        let off = self.layout.offset();
        let n = self.numel();
        let dt = self.dtype;
        self.storage.with_data_mut(|d| {
            for (i, v) in d[off..off + n].iter_mut().enumerate() {
                *v = dt.round(f(i, *v));
            }
        });
    }

    /// Overwrite this tensor's elements with `src`'s (same shape required).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch or if `self` is not contiguous.
    pub fn copy_from(&self, src: &Tensor) {
        assert_eq!(self.shape(), src.shape(), "copy_from shape mismatch");
        let data = src.to_vec();
        let dt = self.dtype;
        assert!(
            self.is_contiguous(),
            "copy_from requires contiguous destination"
        );
        let off = self.layout.offset();
        self.storage.with_data_mut(|d| {
            for (dst, s) in d[off..off + data.len()].iter_mut().zip(&data) {
                *dst = dt.round(*s);
            }
        });
    }

    /// 16-bit patterns of the elements in row-major order.
    ///
    /// This is the population the paper's uniquification bounds by 2^16.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Not16Bit`] for f32 tensors.
    pub fn bits16(&self) -> Result<Vec<u16>, TensorError> {
        if !self.dtype.is_16bit() {
            return Err(TensorError::Not16Bit { actual: self.dtype });
        }
        let dt = self.dtype;
        Ok(self
            .to_vec()
            .into_iter()
            .map(|v| dt.encode16(v).expect("checked 16-bit"))
            .collect())
    }

    // ------------------------------------------------------------------
    // Views (storage-invariant ops; record provenance)
    // ------------------------------------------------------------------

    fn derived_view(&self, layout: Layout, op: InvariantOp) -> Tensor {
        Tensor {
            storage: Arc::clone(&self.storage),
            dtype: self.dtype,
            meta: TensorMeta::derived(
                self.storage.id(),
                layout.clone(),
                op,
                Arc::clone(&self.meta),
            ),
            layout,
        }
    }

    /// View with a new shape (copies first if not contiguous).
    ///
    /// # Panics
    ///
    /// Panics if element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Tensor {
        assert_eq!(
            self.numel(),
            shape.iter().product::<usize>(),
            "reshape element count mismatch: {:?} -> {:?}",
            self.shape(),
            shape
        );
        if self.is_contiguous() {
            self.derived_view(
                self.layout.reshape(shape),
                InvariantOp::Reshape {
                    shape: shape.to_vec(),
                },
            )
        } else {
            self.contiguous().reshape(shape)
        }
    }

    /// Alias of [`Tensor::reshape`] (PyTorch naming).
    pub fn view(&self, shape: &[usize]) -> Tensor {
        self.reshape(shape)
    }

    /// View with axes `d0` and `d1` swapped.
    ///
    /// # Panics
    ///
    /// Panics if either axis is out of range.
    pub fn transpose(&self, d0: usize, d1: usize) -> Tensor {
        self.derived_view(
            self.layout.transpose(d0, d1),
            InvariantOp::Transpose { d0, d1 },
        )
    }

    /// Matrix transpose of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn t(&self) -> Tensor {
        assert_eq!(self.rank(), 2, "t() requires a 2-D tensor");
        self.transpose(0, 1)
    }

    /// View of `len` indices starting at `start` along `dim`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the dimension.
    pub fn slice(&self, dim: usize, start: usize, len: usize) -> Tensor {
        self.derived_view(
            self.layout.slice(dim, start, len),
            InvariantOp::Slice { dim, start, len },
        )
    }

    /// Pure alias of this tensor (same storage and layout), recorded as an
    /// [`InvariantOp::Alias`] hop in the forward graph.
    pub fn alias(&self) -> Tensor {
        self.derived_view(self.layout.clone(), InvariantOp::Alias)
    }

    /// Materialize into row-major storage.
    ///
    /// Already-contiguous tensors are returned as cheap clones (no new
    /// storage, like PyTorch). Otherwise a new storage is allocated on the
    /// same device and the result records an [`InvariantOp::Contiguous`] hop —
    /// new storage, same contents, which is precisely the case the paper's
    /// graph walk exists for.
    pub fn contiguous(&self) -> Tensor {
        if self.is_contiguous() {
            return self.clone();
        }
        let data = self.gather();
        runtime::record_compute(self.numel() as f64, self.device());
        let storage = Storage::new(
            data,
            self.device(),
            self.dtype,
            runtime::pool(self.device()),
        );
        let layout = Layout::contiguous(self.shape());
        let meta = TensorMeta::derived(
            storage.id(),
            layout.clone(),
            InvariantOp::Contiguous,
            Arc::clone(&self.meta),
        );
        Tensor {
            layout,
            storage,
            dtype: self.dtype,
            meta,
        }
    }

    /// Broadcast view of this tensor to `target` shape (stride-0 expansion).
    ///
    /// The result is *not* recorded as provenance (a broadcast view is not
    /// storage-invariant in the reconstruction sense used by marshaling).
    ///
    /// # Panics
    ///
    /// Panics if shapes are not broadcast-compatible.
    pub fn broadcast_to(&self, target: &[usize]) -> Tensor {
        Tensor {
            storage: Arc::clone(&self.storage),
            layout: self.layout.broadcast_to(target),
            dtype: self.dtype,
            meta: TensorMeta::root(self.storage.id(), self.layout.broadcast_to(target)),
        }
    }

    /// Re-view this tensor's storage under an arbitrary `layout` (no
    /// provenance recorded).
    ///
    /// Used by the marshaling layer to rebuild an offloaded view over a
    /// reconstructed storage buffer.
    ///
    /// # Panics
    ///
    /// Panics if the layout can address elements outside the storage.
    pub fn view_with_layout(&self, layout: Layout) -> Tensor {
        let max_reach = layout.offset()
            + layout
                .shape()
                .iter()
                .zip(layout.strides())
                .map(|(&s, &st)| s.saturating_sub(1) * st)
                .sum::<usize>();
        let len = self.storage.len();
        assert!(
            layout.numel() == 0 || max_reach < len,
            "layout reaches element {max_reach} of a {len}-element storage"
        );
        Tensor {
            storage: Arc::clone(&self.storage),
            meta: TensorMeta::root(self.storage.id(), layout.clone()),
            dtype: self.dtype,
            layout,
        }
    }

    // ------------------------------------------------------------------
    // Device & dtype movement
    // ------------------------------------------------------------------

    /// Copy this tensor to `device`.
    ///
    /// Same-device moves return a cheap clone (PyTorch semantics). Cross-
    /// device moves allocate **new storage** on the target (breaking view
    /// sharing — Table 1's pathology), record PCIe traffic in the ledger and
    /// advance the simulated clock.
    pub fn to_device(&self, device: Device) -> Tensor {
        if device == self.device() {
            return self.clone();
        }
        let data = self.to_vec();
        runtime::record_transfer(self.view_bytes(), self.device(), device);
        Tensor::from_vec_unrounded(data, self.shape(), self.dtype, device)
    }

    /// Cast to `dtype`, rounding values through the target encoding.
    ///
    /// Same-dtype casts return a cheap clone.
    pub fn cast(&self, dtype: DType) -> Tensor {
        if dtype == self.dtype {
            return self.clone();
        }
        let mut data = self.to_vec();
        if dtype.is_16bit() {
            for v in &mut data {
                *v = dtype.round(*v);
            }
        }
        runtime::record_compute(self.numel() as f64, self.device());
        Tensor::from_vec_unrounded(data, self.shape(), dtype, self.device())
    }

    /// Element-wise map into a new tensor of the same dtype (rounded).
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        let dt = self.dtype;
        let data: Vec<f32> = self.to_vec().into_iter().map(|v| dt.round(f(v))).collect();
        runtime::record_compute(self.numel() as f64, self.device());
        Tensor::from_vec_unrounded(data, self.shape(), dt, self.device())
    }
}

impl std::fmt::Debug for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Tensor(shape={:?}, dtype={}, device={}, {})",
            self.shape(),
            self.dtype,
            self.device(),
            self.storage_id(),
        )
    }
}

impl std::fmt::Display for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let v = self.to_vec();
        let preview: Vec<String> = v.iter().take(8).map(|x| format!("{x:.4}")).collect();
        let ell = if v.len() > 8 { ", …" } else { "" };
        write!(
            f,
            "Tensor{:?}[{}{}] ({}, {})",
            self.shape(),
            preview.join(", "),
            ell,
            self.dtype,
            self.device()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime;
    use proptest::prelude::*;

    #[test]
    fn from_vec_and_accessors() {
        runtime::reset();
        let t = Tensor::from_vec(
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
            &[2, 3],
            DType::F32,
            Device::Cpu,
        );
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.rank(), 2);
        assert_eq!(t.numel(), 6);
        assert_eq!(t.get(&[1, 2]), 6.0);
        assert_eq!(t.view_bytes(), 24);
        assert!(t.is_contiguous());
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn from_vec_length_mismatch_panics() {
        Tensor::from_vec(vec![1.0], &[2, 2], DType::F32, Device::Cpu);
    }

    #[test]
    fn constructors() {
        runtime::reset();
        assert_eq!(
            Tensor::zeros(&[3], DType::F32, Device::Cpu).to_vec(),
            vec![0.0; 3]
        );
        assert_eq!(
            Tensor::ones(&[2], DType::F32, Device::Cpu).to_vec(),
            vec![1.0; 2]
        );
        assert_eq!(
            Tensor::full(2.5, &[2], DType::F32, Device::Cpu).to_vec(),
            vec![2.5; 2]
        );
        assert_eq!(
            Tensor::arange(4, DType::F32, Device::Cpu).to_vec(),
            vec![0.0, 1.0, 2.0, 3.0]
        );
        assert_eq!(Tensor::scalar(7.0, DType::F32, Device::Cpu).item(), 7.0);
    }

    #[test]
    fn rand_is_seeded_and_bounded() {
        runtime::reset();
        let a = Tensor::rand(&[100], DType::F32, Device::Cpu, 1);
        let b = Tensor::rand(&[100], DType::F32, Device::Cpu, 1);
        let c = Tensor::rand(&[100], DType::F32, Device::Cpu, 2);
        assert_eq!(a.to_vec(), b.to_vec());
        assert_ne!(a.to_vec(), c.to_vec());
        assert!(a.to_vec().iter().all(|&v| (0.0..1.0).contains(&v)));
    }

    #[test]
    fn randn_moments_are_plausible() {
        runtime::reset();
        let t = Tensor::randn(&[10_000], DType::F32, Device::Cpu, 7);
        let v = t.to_vec();
        let mean: f32 = v.iter().sum::<f32>() / v.len() as f32;
        let var: f32 = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / v.len() as f32;
        assert!(mean.abs() < 0.05, "mean={mean}");
        assert!((var - 1.0).abs() < 0.1, "var={var}");
    }

    #[test]
    fn bf16_tensor_rounds_on_construction() {
        runtime::reset();
        let t = Tensor::from_vec(vec![0.1, 0.2, 0.3], &[3], DType::Bf16, Device::Cpu);
        for v in t.to_vec() {
            assert_eq!(DType::Bf16.round(v), v);
        }
    }

    #[test]
    fn bits16_roundtrip() {
        runtime::reset();
        let t = Tensor::randn(&[64], DType::Bf16, Device::Cpu, 3);
        let bits = t.bits16().unwrap();
        let back = Tensor::from_bits16(&bits, &[64], DType::Bf16, Device::Cpu).unwrap();
        assert_eq!(t.to_vec(), back.to_vec());
    }

    #[test]
    fn bits16_rejects_f32() {
        runtime::reset();
        let t = Tensor::zeros(&[2], DType::F32, Device::Cpu);
        assert!(matches!(t.bits16(), Err(TensorError::Not16Bit { .. })));
        assert!(Tensor::from_bits16(&[0, 0], &[2], DType::F32, Device::Cpu).is_err());
        assert!(matches!(
            Tensor::from_bits16(&[0], &[2], DType::Bf16, Device::Cpu),
            Err(TensorError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn views_share_storage_and_record_provenance() {
        runtime::reset();
        let t = Tensor::arange(6, DType::F32, Device::Cpu).reshape(&[2, 3]);
        let v = t.transpose(0, 1);
        assert_eq!(v.storage_id(), t.storage_id());
        assert_eq!(v.to_vec(), vec![0.0, 3.0, 1.0, 4.0, 2.0, 5.0]);
        let anc = v.meta().ancestors(4);
        assert_eq!(anc[0].1.uid, t.meta().uid);
    }

    #[test]
    fn reshape_of_noncontiguous_goes_through_contiguous() {
        runtime::reset();
        let t = Tensor::arange(6, DType::F32, Device::Cpu).reshape(&[2, 3]);
        let r = t.transpose(0, 1).reshape(&[6]);
        assert_eq!(r.to_vec(), vec![0.0, 3.0, 1.0, 4.0, 2.0, 5.0]);
        assert_ne!(r.storage_id(), t.storage_id(), "materialization allocates");
        // Provenance chain: reshape <- contiguous <- transpose <- reshape(root)
        let hops: Vec<_> = r
            .meta()
            .ancestors(8)
            .iter()
            .map(|(ops, _)| ops.first().unwrap().name().to_string())
            .collect();
        assert!(hops.contains(&"contiguous".to_string()));
    }

    #[test]
    fn slice_views() {
        runtime::reset();
        let t = Tensor::arange(12, DType::F32, Device::Cpu).reshape(&[4, 3]);
        let s = t.slice(0, 1, 2);
        assert_eq!(s.shape(), &[2, 3]);
        assert_eq!(s.to_vec(), vec![3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        assert_eq!(s.storage_id(), t.storage_id());
        let col = t.slice(1, 2, 1);
        assert_eq!(col.to_vec(), vec![2.0, 5.0, 8.0, 11.0]);
        assert!(!col.is_contiguous());
    }

    #[test]
    fn to_device_allocates_and_logs() {
        runtime::reset();
        let g = Tensor::rand(&[1024, 1024], DType::F32, Device::gpu(), 0);
        assert_eq!(runtime::gpu_live_bytes(), 4 << 20);
        let c = g.to_device(Device::Cpu);
        assert_eq!(runtime::cpu_live_bytes(), 4 << 20);
        assert_ne!(c.storage_id(), g.storage_id());
        let s = runtime::transfer_snapshot();
        assert_eq!(s.d2h_bytes, 4 << 20);
        assert_eq!(s.d2h_txns, 1);
        // Same-device move is free.
        let g2 = g.to_device(Device::gpu());
        assert_eq!(g2.storage_id(), g.storage_id());
        assert_eq!(runtime::transfer_snapshot().d2h_txns, 1);
    }

    #[test]
    fn table1_lines_0_to_3_without_marshaling() {
        // Reproduces Table 1 of the paper exactly.
        runtime::reset();
        let x0 = Tensor::rand(&[1024, 1024], DType::F32, Device::gpu(), 42); // line 0
        assert_eq!(runtime::gpu_live_bytes(), 4 << 20);
        assert_eq!(runtime::cpu_live_bytes(), 0);
        let x1 = x0.reshape(&[1024 * 1024, 1]); // line 1: view, no GPU growth
        assert_eq!(runtime::gpu_live_bytes(), 4 << 20);
        let _y0 = x0.to_device(Device::Cpu); // line 2
        assert_eq!(runtime::cpu_live_bytes(), 4 << 20);
        let _y1 = x1.to_device(Device::Cpu); // line 3: duplicate!
        assert_eq!(runtime::cpu_live_bytes(), 8 << 20);
    }

    #[test]
    fn cast_changes_footprint() {
        runtime::reset();
        let t = Tensor::rand(&[1000], DType::F32, Device::gpu(), 1);
        let h = t.cast(DType::Bf16);
        assert_eq!(h.dtype(), DType::Bf16);
        assert_eq!(h.view_bytes(), 2000);
        assert_eq!(runtime::gpu_live_bytes(), 4000 + 2000);
        // Same-dtype cast is a clone.
        assert_eq!(t.cast(DType::F32).storage_id(), t.storage_id());
    }

    #[test]
    fn apply_inplace_respects_dtype_and_views() {
        runtime::reset();
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[4], DType::Bf16, Device::Cpu);
        let view = t.reshape(&[2, 2]);
        t.apply_inplace(|_, v| v + 0.5);
        // Mutation must be visible through the view, with bf16 rounding.
        for v in view.to_vec() {
            assert_eq!(DType::Bf16.round(v), v);
        }
        assert_eq!(view.get(&[0, 0]), DType::Bf16.round(1.5));
    }

    #[test]
    fn copy_from_rounds() {
        runtime::reset();
        let dst = Tensor::zeros(&[3], DType::Bf16, Device::Cpu);
        let src = Tensor::from_vec(vec![0.1, 0.2, 0.3], &[3], DType::F32, Device::Cpu);
        dst.copy_from(&src);
        for v in dst.to_vec() {
            assert_eq!(DType::Bf16.round(v), v);
        }
    }

    #[test]
    fn contiguous_noop_for_contiguous() {
        runtime::reset();
        let t = Tensor::arange(4, DType::F32, Device::Cpu);
        let c = t.contiguous();
        assert_eq!(c.storage_id(), t.storage_id());
    }

    #[test]
    fn broadcast_view_reads() {
        runtime::reset();
        let row = Tensor::from_vec(vec![1.0, 2.0], &[2], DType::F32, Device::Cpu);
        let b = row.broadcast_to(&[3, 2]);
        assert_eq!(b.to_vec(), vec![1.0, 2.0, 1.0, 2.0, 1.0, 2.0]);
        assert_eq!(b.storage_id(), row.storage_id());
    }

    #[test]
    fn display_and_debug() {
        runtime::reset();
        let t = Tensor::arange(3, DType::F32, Device::Cpu);
        assert!(format!("{t:?}").contains("shape=[3]"));
        assert!(format!("{t}").contains("0.0000"));
    }

    #[test]
    fn alias_records_hop() {
        runtime::reset();
        let t = Tensor::arange(3, DType::F32, Device::Cpu);
        let a = t.alias();
        assert_eq!(a.storage_id(), t.storage_id());
        let anc = a.meta().ancestors(1);
        assert_eq!(anc.len(), 1);
        assert_eq!(anc[0].0, vec![InvariantOp::Alias]);
    }

    proptest! {
        /// reshape → transpose → to_vec matches manual reindexing.
        #[test]
        fn prop_transpose_matches_manual(r in 1usize..5, c in 1usize..5) {
            runtime::reset();
            let t = Tensor::arange(r * c, DType::F32, Device::Cpu).reshape(&[r, c]);
            let tt = t.transpose(0, 1);
            for i in 0..r {
                for j in 0..c {
                    prop_assert_eq!(t.get(&[i, j]), tt.get(&[j, i]));
                }
            }
        }

        /// Pool accounting: creating then dropping any tensor returns the pool
        /// to its prior live bytes.
        #[test]
        fn prop_pool_balance(n in 1usize..1000) {
            runtime::reset();
            let before = runtime::cpu_live_bytes();
            {
                let _t = Tensor::zeros(&[n], DType::F32, Device::Cpu);
                prop_assert_eq!(runtime::cpu_live_bytes(), before + 4 * n);
            }
            prop_assert_eq!(runtime::cpu_live_bytes(), before);
        }

        /// bits16 of a bf16 tensor has at most min(numel, 65536) distinct values.
        #[test]
        fn prop_bf16_unique_bound(n in 1usize..2000, seed in any::<u64>()) {
            runtime::reset();
            let t = Tensor::randn(&[n], DType::Bf16, Device::Cpu, seed);
            let bits = t.bits16().unwrap();
            let unique: std::collections::HashSet<u16> = bits.iter().copied().collect();
            prop_assert!(unique.len() <= n.min(65536));
        }
    }
}
