//! Logical devices.
//!
//! Devices are *simulated*: all arithmetic runs on the host, but allocations,
//! transfers, and compute time are attributed to the device a tensor lives on.
//! This is the substitution (documented in DESIGN.md) for the paper's
//! GPU + CPU-offload setup: the quantities the paper reports — bytes resident
//! per device and seconds of simulated wall-clock — are tracked exactly.

use serde::{Deserialize, Serialize};

/// A logical compute device.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub enum Device {
    /// Host memory ("CPU" in the paper: the offload target).
    #[default]
    Cpu,
    /// Accelerator memory; the index distinguishes learners in multi-GPU
    /// simulations.
    Gpu(u8),
}

impl Device {
    /// The default accelerator, `Gpu(0)`.
    #[inline]
    pub fn gpu() -> Self {
        Device::Gpu(0)
    }

    /// `true` if this is any GPU device.
    #[inline]
    pub fn is_gpu(self) -> bool {
        matches!(self, Device::Gpu(_))
    }

    /// `true` if this is the host.
    #[inline]
    pub fn is_cpu(self) -> bool {
        matches!(self, Device::Cpu)
    }
}

impl std::fmt::Display for Device {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Device::Cpu => write!(f, "cpu"),
            Device::Gpu(i) => write!(f, "gpu:{i}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_predicates() {
        assert_eq!(Device::Cpu.to_string(), "cpu");
        assert_eq!(Device::Gpu(3).to_string(), "gpu:3");
        assert!(Device::gpu().is_gpu());
        assert!(!Device::gpu().is_cpu());
        assert!(Device::Cpu.is_cpu());
        assert_eq!(Device::default(), Device::Cpu);
    }

    #[test]
    fn ordering_and_hash_distinguish_devices() {
        use std::collections::HashSet;
        let set: HashSet<Device> = [Device::Cpu, Device::Gpu(0), Device::Gpu(1)].into();
        assert_eq!(set.len(), 3);
        assert!(Device::Cpu < Device::Gpu(0));
    }
}
