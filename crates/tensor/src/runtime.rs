//! Shared-handle simulation runtime: device pools, transfer ledger, clock.
//!
//! A [`Runtime`] is a cheap cloneable handle (`Arc` inside) to one set of
//! thread-safe counters — the pattern GPU runtimes like kubecl use for their
//! server handles. The process owns one **default runtime** that every
//! thread reaches unless it has bound its own, so parallel workers all
//! account into the same ledgers; [`bind`] scopes a specific handle to the
//! current thread (that is how worker threads join a caller's measurement,
//! and how tests isolate theirs).
//!
//! [`reset`] keeps its historical test contract: it installs a fresh runtime
//! (empty pools, zero ledger and clock, default cost model) as both the
//! process default and the calling thread's bound runtime, so measurements
//! that follow a `reset()` are isolated from every other thread that also
//! starts with `reset()`. Storages created before a reset keep (and
//! correctly drain) their old pool handles.

use crate::cost::{CostModel, SimClock};
use crate::pool::{PoolCell, PoolSnapshot, TransferLedger, TransferSnapshot};
use crate::Device;
use parking_lot::Mutex;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

#[derive(Debug)]
struct RuntimeState {
    pools: Mutex<HashMap<Device, Arc<PoolCell>>>,
    ledger: Arc<TransferLedger>,
    clock: Arc<SimClock>,
    cost: Mutex<CostModel>,
}

impl RuntimeState {
    fn new() -> Self {
        RuntimeState {
            pools: Mutex::new(HashMap::new()),
            ledger: Arc::new(TransferLedger::new()),
            clock: Arc::new(SimClock::new()),
            cost: Mutex::new(CostModel::default()),
        }
    }
}

/// Cloneable handle to one set of simulation counters.
///
/// All methods are thread-safe; clones share the same state. Obtain the
/// active handle with [`current`], move it across threads freely, and
/// [`bind`] it where the work runs.
#[derive(Debug, Clone)]
pub struct Runtime {
    state: Arc<RuntimeState>,
}

impl Default for Runtime {
    fn default() -> Self {
        Runtime::new()
    }
}

impl Runtime {
    /// A fresh runtime: empty pools, zero ledger and clock, default cost
    /// model.
    pub fn new() -> Runtime {
        Runtime {
            state: Arc::new(RuntimeState::new()),
        }
    }

    /// Pool of `device` in this runtime.
    pub fn pool(&self, device: Device) -> Arc<PoolCell> {
        Arc::clone(
            self.state
                .pools
                .lock()
                .entry(device)
                .or_insert_with(|| Arc::new(PoolCell::new())),
        )
    }

    /// This runtime's transfer ledger.
    pub fn ledger(&self) -> Arc<TransferLedger> {
        Arc::clone(&self.state.ledger)
    }

    /// This runtime's simulated clock.
    pub fn clock(&self) -> Arc<SimClock> {
        Arc::clone(&self.state.clock)
    }

    /// This runtime's cost model.
    pub fn cost_model(&self) -> CostModel {
        *self.state.cost.lock()
    }

    /// Replace this runtime's cost model.
    pub fn set_cost_model(&self, m: CostModel) {
        *self.state.cost.lock() = m;
    }

    /// `true` if `self` and `other` are handles to the same state.
    pub fn same_as(&self, other: &Runtime) -> bool {
        Arc::ptr_eq(&self.state, &other.state)
    }
}

/// The process-wide default runtime slot.
fn default_slot() -> &'static Mutex<Runtime> {
    static DEFAULT: OnceLock<Mutex<Runtime>> = OnceLock::new();
    DEFAULT.get_or_init(|| Mutex::new(Runtime::new()))
}

thread_local! {
    /// Handle bound to this thread, if any; `None` falls through to the
    /// process default.
    static BOUND: RefCell<Option<Runtime>> = const { RefCell::new(None) };
}

/// The runtime active on this thread: the bound handle if one is installed,
/// else the process-wide default.
pub fn current() -> Runtime {
    BOUND
        .with(|b| b.borrow().clone())
        .unwrap_or_else(|| default_slot().lock().clone())
}

/// Guard restoring the previously bound runtime when dropped.
#[derive(Debug)]
pub struct BindGuard {
    previous: Option<Runtime>,
}

impl Drop for BindGuard {
    fn drop(&mut self) {
        BOUND.with(|b| *b.borrow_mut() = self.previous.take());
    }
}

/// Bind `rt` as this thread's runtime until the guard drops.
///
/// Worker threads use this to account their allocations, transfers and
/// clock advances into the *caller's* runtime:
///
/// ```
/// use edkm_tensor::runtime;
///
/// runtime::reset();
/// let rt = runtime::current();
/// std::thread::scope(|s| {
///     s.spawn(|| {
///         let _g = runtime::bind(&rt);
///         runtime::pool(edkm_tensor::Device::Cpu).alloc(64);
///     });
/// });
/// assert_eq!(runtime::cpu_live_bytes(), 64);
/// ```
pub fn bind(rt: &Runtime) -> BindGuard {
    let previous = BOUND.with(|b| b.borrow_mut().replace(rt.clone()));
    BindGuard { previous }
}

/// Install a fresh runtime (empty pools, zero ledger and clock, default
/// cost model) as the process default *and* this thread's bound runtime.
///
/// Tensors allocated before the reset keep handles to the *old* pools, so
/// their eventual drops cannot corrupt new measurements. Threads that bound
/// a handle (or reset their own) keep theirs, which is what isolates
/// concurrently running tests.
pub fn reset() {
    let rt = Runtime::new();
    *default_slot().lock() = rt.clone();
    BOUND.with(|b| *b.borrow_mut() = Some(rt));
}

/// Pool of `device` on the active runtime.
pub fn pool(device: Device) -> Arc<PoolCell> {
    current().pool(device)
}

/// The active runtime's transfer ledger.
pub fn ledger() -> Arc<TransferLedger> {
    current().ledger()
}

/// The active runtime's simulated clock.
pub fn clock() -> Arc<SimClock> {
    current().clock()
}

/// The active runtime's cost model.
pub fn cost_model() -> CostModel {
    current().cost_model()
}

/// Replace the active runtime's cost model.
pub fn set_cost_model(m: CostModel) {
    current().set_cost_model(m);
}

/// Record a host↔device copy of `bytes` from `from` to `to` in the ledger and
/// advance the clock by the modeled PCIe time.
///
/// Same-device "copies" and GPU↔GPU copies advance the clock but are not
/// PCIe traffic; only CPU↔GPU directions hit the ledger.
pub fn record_transfer(bytes: usize, from: Device, to: Device) {
    let rt = current();
    match (from, to) {
        (Device::Cpu, Device::Gpu(_)) => rt.state.ledger.record_h2d(bytes),
        (Device::Gpu(_), Device::Cpu) => rt.state.ledger.record_d2h(bytes),
        _ => {}
    }
    let cost = rt.cost_model();
    rt.state.clock.advance(cost.transfer_s(bytes));
}

/// Advance the clock by the cost of `flops` on `device`.
pub fn record_compute(flops: f64, device: Device) {
    let rt = current();
    let cost = rt.cost_model();
    rt.state.clock.advance(cost.compute_s(flops, device));
}

/// Advance the clock by a marshaling graph walk of `hops`.
pub fn record_walk(hops: usize) {
    let rt = current();
    let cost = rt.cost_model();
    rt.state.clock.advance(cost.walk_s(hops));
}

/// Advance the clock by a uniquification hash pass over `bytes`.
pub fn record_hash_pass(bytes: usize) {
    let rt = current();
    let cost = rt.cost_model();
    rt.state.clock.advance(cost.hash_pass_s(bytes));
}

/// Advance the clock by an all-gather of `bytes_per_learner` over `learners`.
pub fn record_all_gather(bytes_per_learner: usize, learners: usize) {
    let rt = current();
    let cost = rt.cost_model();
    rt.state
        .clock
        .advance(cost.all_gather_s(bytes_per_learner, learners));
}

/// Live bytes currently allocated on `device`.
pub fn live_bytes(device: Device) -> usize {
    pool(device).live_bytes()
}

/// Peak bytes observed on `device` since runtime creation or the last
/// [`reset_peak`].
pub fn peak_bytes(device: Device) -> usize {
    pool(device).peak_bytes()
}

/// Reset `device`'s peak-byte watermark to its current live bytes.
pub fn reset_peak(device: Device) {
    pool(device).reset_peak();
}

/// Set a simulated capacity for `device` (0 = unlimited). Allocations past
/// the capacity are *recorded*, not failed — query with [`device_fits`].
pub fn set_device_capacity(device: Device, bytes: usize) {
    pool(device).set_capacity(bytes);
}

/// `true` if `device` never exceeded its configured capacity.
pub fn device_fits(device: Device) -> bool {
    pool(device).fits()
}

/// Allocations on `device` that exceeded its capacity.
pub fn device_oom_events(device: Device) -> u64 {
    pool(device).oom_events()
}

/// Shorthand: live bytes on [`Device::Cpu`].
pub fn cpu_live_bytes() -> usize {
    live_bytes(Device::Cpu)
}

/// Shorthand: live bytes on [`Device::gpu()`].
pub fn gpu_live_bytes() -> usize {
    live_bytes(Device::gpu())
}

/// Snapshot of a device pool.
pub fn pool_snapshot(device: Device) -> PoolSnapshot {
    pool(device).snapshot()
}

/// Snapshot of the transfer ledger.
pub fn transfer_snapshot() -> TransferSnapshot {
    ledger().snapshot()
}

/// Current simulated time in seconds.
pub fn sim_seconds() -> f64 {
    clock().seconds()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_isolates_measurements() {
        reset();
        pool(Device::Cpu).alloc(100);
        assert_eq!(cpu_live_bytes(), 100);
        reset();
        assert_eq!(cpu_live_bytes(), 0);
        assert_eq!(peak_bytes(Device::Cpu), 0);
    }

    #[test]
    fn transfers_hit_ledger_by_direction() {
        reset();
        record_transfer(1000, Device::gpu(), Device::Cpu);
        record_transfer(500, Device::Cpu, Device::gpu());
        record_transfer(250, Device::Gpu(0), Device::Gpu(1));
        let s = transfer_snapshot();
        assert_eq!(s.d2h_bytes, 1000);
        assert_eq!(s.h2d_bytes, 500);
        assert_eq!(s.total_txns(), 2, "gpu-gpu copies are not PCIe traffic");
        assert!(sim_seconds() > 0.0);
    }

    #[test]
    fn compute_advances_clock_per_device() {
        reset();
        record_compute(1e9, Device::Cpu);
        let cpu_t = sim_seconds();
        reset();
        record_compute(1e9, Device::gpu());
        let gpu_t = sim_seconds();
        assert!(cpu_t > gpu_t, "CPU must be slower than GPU in the model");
    }

    #[test]
    fn overhead_recorders_advance_clock() {
        reset();
        record_walk(4);
        record_hash_pass(1 << 20);
        record_all_gather(1 << 20, 8);
        assert!(sim_seconds() > 0.0);
        record_all_gather(1 << 20, 1); // no-op for a single learner
    }

    #[test]
    fn custom_cost_model_applies() {
        reset();
        let m = CostModel {
            pcie_bps: 1.0, // pathological: 1 byte per second
            pcie_latency_s: 0.0,
            ..CostModel::default()
        };
        set_cost_model(m);
        record_transfer(10, Device::gpu(), Device::Cpu);
        assert!((sim_seconds() - 10.0).abs() < 1e-6);
        assert_eq!(cost_model().pcie_bps, 1.0);
        reset();
        assert_eq!(cost_model(), CostModel::default());
    }

    #[test]
    fn pools_are_per_device() {
        reset();
        pool(Device::Gpu(0)).alloc(7);
        pool(Device::Gpu(1)).alloc(9);
        assert_eq!(live_bytes(Device::Gpu(0)), 7);
        assert_eq!(live_bytes(Device::Gpu(1)), 9);
        assert_eq!(cpu_live_bytes(), 0);
    }

    #[test]
    fn handles_share_state_across_threads() {
        reset();
        pool(Device::Cpu).alloc(123);
        let rt = current();
        let seen = std::thread::spawn({
            let rt = rt.clone();
            move || {
                let _g = bind(&rt);
                pool(Device::Cpu).alloc(7);
                cpu_live_bytes()
            }
        })
        .join()
        .unwrap();
        assert_eq!(seen, 130, "a bound worker joins the caller's accounting");
        assert_eq!(cpu_live_bytes(), 130);
    }

    #[test]
    fn bind_guard_restores_previous_runtime() {
        reset();
        pool(Device::Cpu).alloc(11);
        let other = Runtime::new();
        {
            let _g = bind(&other);
            assert_eq!(cpu_live_bytes(), 0, "bound runtime starts empty");
            pool(Device::Cpu).alloc(5);
            assert_eq!(cpu_live_bytes(), 5);
        }
        assert_eq!(
            cpu_live_bytes(),
            11,
            "guard drop restores the outer runtime"
        );
        assert_eq!(other.pool(Device::Cpu).live_bytes(), 5);
    }

    #[test]
    fn nested_binds_unwind_in_order() {
        reset();
        let a = Runtime::new();
        let b = Runtime::new();
        let _ga = bind(&a);
        {
            let _gb = bind(&b);
            pool(Device::Cpu).alloc(2);
            assert!(current().same_as(&b));
        }
        assert!(current().same_as(&a));
        assert_eq!(b.pool(Device::Cpu).live_bytes(), 2);
        assert_eq!(a.pool(Device::Cpu).live_bytes(), 0);
    }

    #[test]
    fn concurrent_recording_accounts_every_event() {
        reset();
        let rt = current();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let _g = bind(&rt);
                    for _ in 0..250 {
                        record_transfer(8, Device::gpu(), Device::Cpu);
                        pool(Device::Cpu).alloc(8);
                        pool(Device::Cpu).free(8);
                    }
                });
            }
        });
        let snap = transfer_snapshot();
        assert_eq!(snap.d2h_bytes, 4 * 250 * 8);
        assert_eq!(snap.d2h_txns, 1000);
        assert_eq!(cpu_live_bytes(), 0);
        assert_eq!(pool(Device::Cpu).alloc_count(), 1000);
    }

    #[test]
    fn runtime_handle_is_send_sync() {
        fn assert_ss<T: Send + Sync>() {}
        assert_ss::<Runtime>();
    }
}
