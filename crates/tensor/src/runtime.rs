//! Thread-local simulation runtime: device pools, transfer ledger, clock.
//!
//! Each thread gets an isolated runtime so tests and experiments never see
//! each other's allocations. [`reset`] swaps in fresh counters; storages
//! created before the reset keep (and correctly drain) their old pool handles.

use crate::cost::{CostModel, SimClock};
use crate::pool::{PoolCell, PoolSnapshot, TransferLedger, TransferSnapshot};
use crate::Device;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;

#[derive(Debug)]
struct RuntimeState {
    pools: HashMap<Device, Arc<PoolCell>>,
    ledger: Arc<TransferLedger>,
    clock: Arc<SimClock>,
    cost: CostModel,
}

impl RuntimeState {
    fn new() -> Self {
        RuntimeState {
            pools: HashMap::new(),
            ledger: Arc::new(TransferLedger::new()),
            clock: Arc::new(SimClock::new()),
            cost: CostModel::default(),
        }
    }

    fn pool(&mut self, device: Device) -> Arc<PoolCell> {
        Arc::clone(
            self.pools
                .entry(device)
                .or_insert_with(|| Arc::new(PoolCell::new())),
        )
    }
}

thread_local! {
    static RUNTIME: RefCell<RuntimeState> = RefCell::new(RuntimeState::new());
}

/// Replace this thread's runtime with a fresh one (empty pools, zero ledger
/// and clock, default cost model).
///
/// Tensors allocated before the reset keep handles to the *old* pools, so
/// their eventual drops cannot corrupt new measurements.
pub fn reset() {
    RUNTIME.with(|rt| *rt.borrow_mut() = RuntimeState::new());
}

/// Pool of `device` on this thread's runtime.
pub fn pool(device: Device) -> Arc<PoolCell> {
    RUNTIME.with(|rt| rt.borrow_mut().pool(device))
}

/// The thread's transfer ledger.
pub fn ledger() -> Arc<TransferLedger> {
    RUNTIME.with(|rt| Arc::clone(&rt.borrow().ledger))
}

/// The thread's simulated clock.
pub fn clock() -> Arc<SimClock> {
    RUNTIME.with(|rt| Arc::clone(&rt.borrow().clock))
}

/// The thread's cost model.
pub fn cost_model() -> CostModel {
    RUNTIME.with(|rt| rt.borrow().cost)
}

/// Replace the thread's cost model.
pub fn set_cost_model(m: CostModel) {
    RUNTIME.with(|rt| rt.borrow_mut().cost = m);
}

/// Record a host↔device copy of `bytes` from `from` to `to` in the ledger and
/// advance the clock by the modeled PCIe time.
///
/// Same-device "copies" and GPU↔GPU copies advance the clock but are not
/// PCIe traffic; only CPU↔GPU directions hit the ledger.
pub fn record_transfer(bytes: usize, from: Device, to: Device) {
    RUNTIME.with(|rt| {
        let rt = rt.borrow();
        match (from, to) {
            (Device::Cpu, Device::Gpu(_)) => rt.ledger.record_h2d(bytes),
            (Device::Gpu(_), Device::Cpu) => rt.ledger.record_d2h(bytes),
            _ => {}
        }
        rt.clock.advance(rt.cost.transfer_s(bytes));
    });
}

/// Advance the clock by the cost of `flops` on `device`.
pub fn record_compute(flops: f64, device: Device) {
    RUNTIME.with(|rt| {
        let rt = rt.borrow();
        rt.clock.advance(rt.cost.compute_s(flops, device));
    });
}

/// Advance the clock by a marshaling graph walk of `hops`.
pub fn record_walk(hops: usize) {
    RUNTIME.with(|rt| {
        let rt = rt.borrow();
        rt.clock.advance(rt.cost.walk_s(hops));
    });
}

/// Advance the clock by a uniquification hash pass over `bytes`.
pub fn record_hash_pass(bytes: usize) {
    RUNTIME.with(|rt| {
        let rt = rt.borrow();
        rt.clock.advance(rt.cost.hash_pass_s(bytes));
    });
}

/// Advance the clock by an all-gather of `bytes_per_learner` over `learners`.
pub fn record_all_gather(bytes_per_learner: usize, learners: usize) {
    RUNTIME.with(|rt| {
        let rt = rt.borrow();
        rt.clock.advance(rt.cost.all_gather_s(bytes_per_learner, learners));
    });
}

/// Live bytes currently allocated on `device`.
pub fn live_bytes(device: Device) -> usize {
    pool(device).live_bytes()
}

/// Peak bytes observed on `device` since runtime creation or the last
/// [`reset_peak`].
pub fn peak_bytes(device: Device) -> usize {
    pool(device).peak_bytes()
}

/// Reset `device`'s peak-byte watermark to its current live bytes.
pub fn reset_peak(device: Device) {
    pool(device).reset_peak();
}

/// Set a simulated capacity for `device` (0 = unlimited). Allocations past
/// the capacity are *recorded*, not failed — query with [`device_fits`].
pub fn set_device_capacity(device: Device, bytes: usize) {
    pool(device).set_capacity(bytes);
}

/// `true` if `device` never exceeded its configured capacity.
pub fn device_fits(device: Device) -> bool {
    pool(device).fits()
}

/// Allocations on `device` that exceeded its capacity.
pub fn device_oom_events(device: Device) -> u64 {
    pool(device).oom_events()
}

/// Shorthand: live bytes on [`Device::Cpu`].
pub fn cpu_live_bytes() -> usize {
    live_bytes(Device::Cpu)
}

/// Shorthand: live bytes on [`Device::gpu()`].
pub fn gpu_live_bytes() -> usize {
    live_bytes(Device::gpu())
}

/// Snapshot of a device pool.
pub fn pool_snapshot(device: Device) -> PoolSnapshot {
    pool(device).snapshot()
}

/// Snapshot of the transfer ledger.
pub fn transfer_snapshot() -> TransferSnapshot {
    ledger().snapshot()
}

/// Current simulated time in seconds.
pub fn sim_seconds() -> f64 {
    clock().seconds()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_isolates_measurements() {
        reset();
        pool(Device::Cpu).alloc(100);
        assert_eq!(cpu_live_bytes(), 100);
        reset();
        assert_eq!(cpu_live_bytes(), 0);
        assert_eq!(peak_bytes(Device::Cpu), 0);
    }

    #[test]
    fn transfers_hit_ledger_by_direction() {
        reset();
        record_transfer(1000, Device::gpu(), Device::Cpu);
        record_transfer(500, Device::Cpu, Device::gpu());
        record_transfer(250, Device::Gpu(0), Device::Gpu(1));
        let s = transfer_snapshot();
        assert_eq!(s.d2h_bytes, 1000);
        assert_eq!(s.h2d_bytes, 500);
        assert_eq!(s.total_txns(), 2, "gpu-gpu copies are not PCIe traffic");
        assert!(sim_seconds() > 0.0);
    }

    #[test]
    fn compute_advances_clock_per_device() {
        reset();
        record_compute(1e9, Device::Cpu);
        let cpu_t = sim_seconds();
        reset();
        record_compute(1e9, Device::gpu());
        let gpu_t = sim_seconds();
        assert!(cpu_t > gpu_t, "CPU must be slower than GPU in the model");
    }

    #[test]
    fn overhead_recorders_advance_clock() {
        reset();
        record_walk(4);
        record_hash_pass(1 << 20);
        record_all_gather(1 << 20, 8);
        assert!(sim_seconds() > 0.0);
        record_all_gather(1 << 20, 1); // no-op for a single learner
    }

    #[test]
    fn custom_cost_model_applies() {
        reset();
        let m = CostModel {
            pcie_bps: 1.0, // pathological: 1 byte per second
            pcie_latency_s: 0.0,
            ..CostModel::default()
        };
        set_cost_model(m);
        record_transfer(10, Device::gpu(), Device::Cpu);
        assert!((sim_seconds() - 10.0).abs() < 1e-6);
        assert_eq!(cost_model().pcie_bps, 1.0);
        reset();
        assert_eq!(cost_model(), CostModel::default());
    }

    #[test]
    fn pools_are_per_device() {
        reset();
        pool(Device::Gpu(0)).alloc(7);
        pool(Device::Gpu(1)).alloc(9);
        assert_eq!(live_bytes(Device::Gpu(0)), 7);
        assert_eq!(live_bytes(Device::Gpu(1)), 9);
        assert_eq!(cpu_live_bytes(), 0);
    }

    #[test]
    fn threads_have_isolated_runtimes() {
        reset();
        pool(Device::Cpu).alloc(123);
        let other = std::thread::spawn(cpu_live_bytes).join().unwrap();
        assert_eq!(other, 0);
        assert_eq!(cpu_live_bytes(), 123);
    }
}
