//! # edkm-tensor
//!
//! Strided tensor substrate for the eDKM reproduction.
//!
//! This crate plays the role PyTorch's tensor library plays in the paper
//! *eDKM: An Efficient and Accurate Train-time Weight Clustering for Large
//! Language Models* (HPCA'25): it provides
//!
//! * n-dimensional strided tensors whose **views share data storage** (the
//!   property Table 1 of the paper is about),
//! * **bit-exact 16-bit dtypes** ([`DType::Bf16`], [`DType::F16`]) so a tensor
//!   has at most 2^16 distinct values — the fact weight uniquification
//!   exploits,
//! * **simulated devices** ([`Device::Cpu`], [`Device::Gpu`]) with per-device
//!   memory pools that account live/peak bytes of every allocation,
//! * a **transfer ledger** recording GPU↔CPU traffic (bytes and
//!   transactions), and
//! * an analytic **cost model** ([`CostModel`]/[`SimClock`]) that converts
//!   compute FLOPs, PCIe traffic and collective operations into simulated
//!   seconds (the "Runtime (sec)" column of Table 2).
//!
//! All arithmetic executes on the host; devices are *logical*. What is real is
//! the accounting: every [`Storage`] registers its bytes with the pool of the
//! device it lives on and deregisters on drop, so peak-memory questions have
//! exact answers.
//!
//! ## Example
//!
//! ```
//! use edkm_tensor::{Tensor, Device, DType, runtime};
//!
//! runtime::reset();
//! // Line 0 of Table 1: x0 = torch.rand([1024, 1024]) -> 4 MB on GPU.
//! let x0 = Tensor::rand(&[1024, 1024], DType::F32, Device::gpu(), 42);
//! assert_eq!(runtime::gpu_live_bytes(), 4 << 20);
//! // Line 1: a view adds no GPU memory.
//! let x1 = x0.reshape(&[1024 * 1024, 1]);
//! assert_eq!(runtime::gpu_live_bytes(), 4 << 20);
//! assert_eq!(x0.storage_id(), x1.storage_id());
//! ```

pub mod cost;
pub mod device;
pub mod dtype;
pub mod error;
pub mod layout;
pub mod ops;
pub mod pool;
pub mod provenance;
pub mod runtime;
pub mod storage;
pub mod tensor;

pub use cost::{CostModel, SimClock};
pub use device::Device;
pub use dtype::DType;
pub use error::TensorError;
pub use layout::Layout;
pub use pool::{PoolSnapshot, TransferSnapshot};
pub use provenance::{InvariantOp, Provenance, TensorMeta};
pub use storage::{Storage, StorageId};
pub use tensor::{Tensor, TensorId};

/// Convenient glob-import of the types almost every consumer needs.
pub mod prelude {
    pub use crate::{DType, Device, Tensor};
}
