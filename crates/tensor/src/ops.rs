//! Tensor-level math kernels (no autograd; see `edkm-autograd` for VJPs).
//!
//! Every kernel charges its FLOPs to the simulated clock via
//! [`crate::runtime::record_compute`], which is how the "Runtime (sec)"
//! column of the paper's Table 2 is assembled.

use crate::layout::broadcast_shapes;
use crate::{runtime, DType, Tensor};
use rayon::prelude::*;

/// Multiply-accumulate count below which a kernel stays single-threaded
/// (spawning workers costs more than it saves on small tensors).
const PAR_WORK_THRESHOLD: usize = 1 << 17;

/// Dtype promotion for binary ops: like dtypes stay, unlike promote to f32.
pub fn promote(a: DType, b: DType) -> DType {
    if a == b {
        a
    } else {
        DType::F32
    }
}

fn check_same_device(a: &Tensor, b: &Tensor, op: &str) {
    assert_eq!(
        a.device(),
        b.device(),
        "{op}: tensors on different devices ({} vs {})",
        a.device(),
        b.device()
    );
}

/// Element-wise binary op with NumPy broadcasting.
///
/// # Panics
///
/// Panics if shapes are not broadcast-compatible or devices differ.
pub fn binary_op(a: &Tensor, b: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
    check_same_device(a, b, "binary_op");
    let out_shape = broadcast_shapes(a.shape(), b.shape());
    let dt = promote(a.dtype(), b.dtype());

    let out = if a.shape() == b.shape() && a.shape() == out_shape.as_slice() {
        // Fast path: identical logical order.
        a.with_data(|av| {
            b.with_data(|bv| {
                av.iter()
                    .zip(bv)
                    .map(|(&x, &y)| f(x, y))
                    .collect::<Vec<f32>>()
            })
        })
    } else {
        let la = a.layout().broadcast_to(&out_shape);
        let lb = b.layout().broadcast_to(&out_shape);
        a.storage().with_data(|ad| {
            b.storage().with_data(|bd| {
                la.iter_offsets()
                    .zip(lb.iter_offsets())
                    .map(|(oa, ob)| f(ad[oa], bd[ob]))
                    .collect::<Vec<f32>>()
            })
        })
    };

    let mut out = out;
    if dt.is_16bit() {
        for v in &mut out {
            *v = dt.round(*v);
        }
    }
    runtime::record_compute(out.len() as f64, a.device());
    Tensor::from_vec_unrounded(out, &out_shape, dt, a.device())
}

/// `a + b` with broadcasting.
pub fn add(a: &Tensor, b: &Tensor) -> Tensor {
    binary_op(a, b, |x, y| x + y)
}

/// `a - b` with broadcasting.
pub fn sub(a: &Tensor, b: &Tensor) -> Tensor {
    binary_op(a, b, |x, y| x - y)
}

/// `a * b` with broadcasting.
pub fn mul(a: &Tensor, b: &Tensor) -> Tensor {
    binary_op(a, b, |x, y| x * y)
}

/// `a / b` with broadcasting.
pub fn div(a: &Tensor, b: &Tensor) -> Tensor {
    binary_op(a, b, |x, y| x / y)
}

/// Element-wise maximum with broadcasting.
pub fn maximum(a: &Tensor, b: &Tensor) -> Tensor {
    binary_op(a, b, f32::max)
}

/// `a + s` element-wise.
pub fn add_scalar(a: &Tensor, s: f32) -> Tensor {
    a.map(|v| v + s)
}

/// `a * s` element-wise.
pub fn mul_scalar(a: &Tensor, s: f32) -> Tensor {
    a.map(|v| v * s)
}

/// Matrix product of 2-D tensors `[m,k] × [k,n] → [m,n]`.
///
/// # Panics
///
/// Panics if shapes are incompatible, ranks are not 2, or devices differ.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    check_same_device(a, b, "matmul");
    assert_eq!(a.rank(), 2, "matmul lhs must be 2-D, got {:?}", a.shape());
    assert_eq!(b.rank(), 2, "matmul rhs must be 2-D, got {:?}", b.shape());
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    assert_eq!(
        k,
        k2,
        "matmul inner dims: {:?} × {:?}",
        a.shape(),
        b.shape()
    );

    let dt = promote(a.dtype(), b.dtype());
    let out = a.with_data(|ad| b.with_data(|bd| matmul_kernel(ad, bd, m, k, n)));
    let mut out = out;
    if dt.is_16bit() {
        for v in &mut out {
            *v = dt.round(*v);
        }
    }
    runtime::record_compute(2.0 * m as f64 * n as f64 * k as f64, a.device());
    Tensor::from_vec_unrounded(out, &[m, n], dt, a.device())
}

pub(crate) fn matmul_kernel(ad: &[f32], bd: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    batched_matmul_into(&mut out, ad, bd, 1, m, k, n);
    out
}

/// `out[i, :] += a_row ⋅ B` for one output row.
#[inline]
fn matmul_row(o_row: &mut [f32], a_row: &[f32], bd: &[f32], n: usize) {
    for (p, &av) in a_row.iter().enumerate() {
        let b_row = &bd[p * n..(p + 1) * n];
        for (o, &bv) in o_row.iter_mut().zip(b_row) {
            *o += av * bv;
        }
    }
}

/// Batched `[ba,m,k] × [ba,k,n] → [ba,m,n]` into a zeroed `out`, splitting
/// the `ba·m` output rows across worker threads when the multiply count
/// clears [`PAR_WORK_THRESHOLD`]. Workers only touch their own output rows;
/// all runtime accounting stays with the caller.
fn batched_matmul_into(
    out: &mut [f32],
    ad: &[f32],
    bd: &[f32],
    ba: usize,
    m: usize,
    k: usize,
    n: usize,
) {
    debug_assert_eq!(out.len(), ba * m * n);
    if n == 0 {
        return; // zero-width output: nothing to compute (chunking needs n > 0)
    }
    let row = |idx: usize| {
        let (bi, i) = (idx / m, idx % m);
        (
            &ad[bi * m * k + i * k..][..k],
            &bd[bi * k * n..(bi + 1) * k * n],
        )
    };
    if ba * m * n * k >= PAR_WORK_THRESHOLD && ba * m > 1 {
        out.par_chunks_mut(n).enumerate().for_each(|(idx, o_row)| {
            let (a_row, b_mat) = row(idx);
            matmul_row(o_row, a_row, b_mat, n);
        });
    } else {
        for (idx, o_row) in out.chunks_mut(n).enumerate() {
            let (a_row, b_mat) = row(idx);
            matmul_row(o_row, a_row, b_mat, n);
        }
    }
}

/// Batched matrix product `[b,m,k] × [b,k,n] → [b,m,n]`.
///
/// # Panics
///
/// Panics on rank/shape/device mismatch.
pub fn bmm(a: &Tensor, b: &Tensor) -> Tensor {
    check_same_device(a, b, "bmm");
    assert_eq!(a.rank(), 3, "bmm lhs must be 3-D");
    assert_eq!(b.rank(), 3, "bmm rhs must be 3-D");
    let (ba, m, k) = (a.shape()[0], a.shape()[1], a.shape()[2]);
    let (bb, k2, n) = (b.shape()[0], b.shape()[1], b.shape()[2]);
    assert_eq!(ba, bb, "bmm batch dims differ");
    assert_eq!(k, k2, "bmm inner dims differ");

    let dt = promote(a.dtype(), b.dtype());
    let mut out = vec![0.0f32; ba * m * n];
    a.with_data(|ad| b.with_data(|bd| batched_matmul_into(&mut out, ad, bd, ba, m, k, n)));
    if dt.is_16bit() {
        for v in &mut out {
            *v = dt.round(*v);
        }
    }
    runtime::record_compute(2.0 * (ba * m * n * k) as f64, a.device());
    Tensor::from_vec_unrounded(out, &[ba, m, n], dt, a.device())
}

/// Numerically-stable softmax over the last axis.
pub fn softmax_lastdim(t: &Tensor) -> Tensor {
    let cols = *t.shape().last().expect("softmax needs rank >= 1");
    let data = t.to_vec();
    let mut out = vec![0.0f32; data.len()];
    for (row_in, row_out) in data.chunks(cols).zip(out.chunks_mut(cols)) {
        let mx = row_in.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for (o, &v) in row_out.iter_mut().zip(row_in) {
            *o = (v - mx).exp();
            sum += *o;
        }
        let inv = 1.0 / sum;
        for o in row_out.iter_mut() {
            *o *= inv;
        }
    }
    runtime::record_compute(4.0 * data.len() as f64, t.device());
    Tensor::from_vec_unrounded(out, t.shape(), DType::F32, t.device())
}

/// Numerically-stable log-softmax over the last axis.
pub fn log_softmax_lastdim(t: &Tensor) -> Tensor {
    let cols = *t.shape().last().expect("log_softmax needs rank >= 1");
    let data = t.to_vec();
    let mut out = vec![0.0f32; data.len()];
    for (row_in, row_out) in data.chunks(cols).zip(out.chunks_mut(cols)) {
        let mx = row_in.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let lse = row_in.iter().map(|&v| (v - mx).exp()).sum::<f32>().ln() + mx;
        for (o, &v) in row_out.iter_mut().zip(row_in) {
            *o = v - lse;
        }
    }
    runtime::record_compute(4.0 * data.len() as f64, t.device());
    Tensor::from_vec_unrounded(out, t.shape(), DType::F32, t.device())
}

/// Sum of all elements, as a rank-0 tensor.
pub fn sum_all(t: &Tensor) -> Tensor {
    let s: f32 = t.with_data(|d| d.iter().sum());
    runtime::record_compute(t.numel() as f64, t.device());
    Tensor::from_vec_unrounded(vec![s], &[], DType::F32, t.device())
}

/// Mean of all elements, as a rank-0 tensor.
pub fn mean_all(t: &Tensor) -> Tensor {
    let n = t.numel().max(1) as f32;
    let s = sum_all(t);
    mul_scalar(&s, 1.0 / n)
}

/// Sum over one axis (the axis is removed).
///
/// # Panics
///
/// Panics if `axis >= rank`.
pub fn sum_axis(t: &Tensor, axis: usize) -> Tensor {
    assert!(axis < t.rank(), "sum_axis: axis {axis} out of range");
    let shape = t.shape().to_vec();
    let out_shape: Vec<usize> = shape
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != axis)
        .map(|(_, &s)| s)
        .collect();
    let outer: usize = shape[..axis].iter().product();
    let mid = shape[axis];
    let inner: usize = shape[axis + 1..].iter().product();
    let data = t.to_vec();
    let mut out = vec![0.0f32; outer * inner];
    for o in 0..outer {
        for m in 0..mid {
            let base = (o * mid + m) * inner;
            let obase = o * inner;
            for i in 0..inner {
                out[obase + i] += data[base + i];
            }
        }
    }
    runtime::record_compute(t.numel() as f64, t.device());
    Tensor::from_vec_unrounded(out, &out_shape, DType::F32, t.device())
}

/// Arg-max index along the last axis for each row.
pub fn argmax_lastdim(t: &Tensor) -> Vec<usize> {
    let cols = *t.shape().last().expect("argmax needs rank >= 1");
    t.to_vec()
        .chunks(cols)
        .map(|row| {
            row.iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(i, _)| i)
                .unwrap_or(0)
        })
        .collect()
}

/// Row gather: `table[ids[i], :] → out[i, :]` (embedding lookup).
///
/// # Panics
///
/// Panics if `table` is not 2-D or any id is out of range.
pub fn gather_rows(table: &Tensor, ids: &[usize]) -> Tensor {
    assert_eq!(table.rank(), 2, "gather_rows table must be 2-D");
    let (v, d) = (table.shape()[0], table.shape()[1]);
    let mut out = Vec::with_capacity(ids.len() * d);
    table.with_data(|td| {
        for &id in ids {
            assert!(id < v, "gather_rows: id {id} out of range {v}");
            out.extend_from_slice(&td[id * d..(id + 1) * d]);
        }
    });
    runtime::record_compute((ids.len() * d) as f64, table.device());
    Tensor::from_vec_unrounded(out, &[ids.len(), d], table.dtype(), table.device())
}

/// Row scatter-add: `out[ids[i], :] += grad[i, :]` over a `[v, d]` output
/// (the VJP of [`gather_rows`]).
///
/// # Panics
///
/// Panics if `grad` is not `[ids.len(), d]` or any id is out of range.
pub fn scatter_add_rows(grad: &Tensor, ids: &[usize], v: usize) -> Tensor {
    assert_eq!(grad.rank(), 2, "scatter_add_rows grad must be 2-D");
    assert_eq!(grad.shape()[0], ids.len(), "scatter_add_rows row mismatch");
    let d = grad.shape()[1];
    let mut out = vec![0.0f32; v * d];
    grad.with_data(|gd| {
        for (i, &id) in ids.iter().enumerate() {
            assert!(id < v, "scatter_add_rows: id {id} out of range {v}");
            for j in 0..d {
                out[id * d + j] += gd[i * d + j];
            }
        }
    });
    runtime::record_compute((ids.len() * d) as f64, grad.device());
    Tensor::from_vec_unrounded(out, &[v, d], DType::F32, grad.device())
}

/// Negative squared Euclidean distance matrix:
/// `out[i][j] = -‖w[i,:] − c[j,:]‖²` for `w: [n,d]`, `c: [k,d]`.
///
/// This is the distance kernel of the DKM attention map (Fig. 1 of the
/// paper); scalar clustering uses `d = 1`.
///
/// # Panics
///
/// Panics on rank/shape/device mismatch.
pub fn neg_sqdist(w: &Tensor, c: &Tensor) -> Tensor {
    check_same_device(w, c, "neg_sqdist");
    assert_eq!(w.rank(), 2, "neg_sqdist: w must be [n,d]");
    assert_eq!(c.rank(), 2, "neg_sqdist: c must be [k,d]");
    assert_eq!(
        w.shape()[1],
        c.shape()[1],
        "neg_sqdist: feature dims differ"
    );
    let (n, d) = (w.shape()[0], w.shape()[1]);
    let k = c.shape()[0];
    let mut out = vec![0.0f32; n * k];
    let sqdist_row = |i: usize, orow: &mut [f32], wd: &[f32], cd: &[f32]| {
        let wrow = &wd[i * d..(i + 1) * d];
        for (j, o) in orow.iter_mut().enumerate() {
            let crow = &cd[j * d..(j + 1) * d];
            let mut acc = 0.0f32;
            for (&wv, &cv) in wrow.iter().zip(crow) {
                let diff = wv - cv;
                acc += diff * diff;
            }
            *o = -acc;
        }
    };
    w.with_data(|wd| {
        c.with_data(|cd| {
            if k == 0 {
                // zero centroids: empty map (chunking needs k > 0)
            } else if n * k * d >= PAR_WORK_THRESHOLD && n > 1 {
                out.par_chunks_mut(k)
                    .enumerate()
                    .for_each(|(i, orow)| sqdist_row(i, orow, wd, cd));
            } else {
                for (i, orow) in out.chunks_mut(k).enumerate() {
                    sqdist_row(i, orow, wd, cd);
                }
            }
        })
    });
    runtime::record_compute(3.0 * (n * k * d) as f64, w.device());
    Tensor::from_vec_unrounded(out, &[n, k], DType::F32, w.device())
}

/// `true` if every element differs by at most `tol`.
pub fn allclose(a: &Tensor, b: &Tensor, tol: f32) -> bool {
    a.shape() == b.shape() && max_abs_diff(a, b) <= tol
}

/// Largest absolute element-wise difference.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn max_abs_diff(a: &Tensor, b: &Tensor) -> f32 {
    assert_eq!(a.shape(), b.shape(), "max_abs_diff shape mismatch");
    let av = a.to_vec();
    let bv = b.to_vec();
    av.iter()
        .zip(&bv)
        .map(|(&x, &y)| (x - y).abs())
        .fold(0.0, f32::max)
}

/// Euclidean norm of all elements.
pub fn l2_norm(t: &Tensor) -> f32 {
    t.with_data(|d| {
        d.iter()
            .map(|&v| (v as f64) * (v as f64))
            .sum::<f64>()
            .sqrt() as f32
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{runtime, Device};
    use proptest::prelude::*;

    fn t(data: Vec<f32>, shape: &[usize]) -> Tensor {
        Tensor::from_vec(data, shape, DType::F32, Device::Cpu)
    }

    #[test]
    fn add_same_shape() {
        runtime::reset();
        let r = add(&t(vec![1.0, 2.0], &[2]), &t(vec![10.0, 20.0], &[2]));
        assert_eq!(r.to_vec(), vec![11.0, 22.0]);
    }

    #[test]
    fn broadcast_row_and_scalar() {
        runtime::reset();
        let a = t(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let row = t(vec![10.0, 20.0, 30.0], &[3]);
        assert_eq!(
            add(&a, &row).to_vec(),
            vec![11.0, 22.0, 33.0, 14.0, 25.0, 36.0]
        );
        let s = t(vec![100.0], &[1]);
        assert_eq!(
            add(&a, &s).to_vec(),
            vec![101.0, 102.0, 103.0, 104.0, 105.0, 106.0]
        );
        let col = t(vec![1.0, 2.0], &[2, 1]);
        assert_eq!(
            mul(&col, &row).to_vec(),
            vec![10.0, 20.0, 30.0, 20.0, 40.0, 60.0]
        );
    }

    #[test]
    #[should_panic(expected = "broadcast")]
    fn broadcast_incompatible_panics() {
        runtime::reset();
        add(&t(vec![0.0; 3], &[3]), &t(vec![0.0; 4], &[4]));
    }

    #[test]
    fn sub_mul_div_max() {
        runtime::reset();
        let a = t(vec![4.0, 9.0], &[2]);
        let b = t(vec![2.0, 3.0], &[2]);
        assert_eq!(sub(&a, &b).to_vec(), vec![2.0, 6.0]);
        assert_eq!(mul(&a, &b).to_vec(), vec![8.0, 27.0]);
        assert_eq!(div(&a, &b).to_vec(), vec![2.0, 3.0]);
        assert_eq!(maximum(&a, &b).to_vec(), vec![4.0, 9.0]);
        assert_eq!(add_scalar(&a, 1.0).to_vec(), vec![5.0, 10.0]);
        assert_eq!(mul_scalar(&a, 0.5).to_vec(), vec![2.0, 4.5]);
    }

    #[test]
    fn promote_rules() {
        assert_eq!(promote(DType::F32, DType::F32), DType::F32);
        assert_eq!(promote(DType::Bf16, DType::Bf16), DType::Bf16);
        assert_eq!(promote(DType::Bf16, DType::F32), DType::F32);
    }

    #[test]
    fn bf16_ops_stay_bf16_exact() {
        runtime::reset();
        let a = Tensor::randn(&[32], DType::Bf16, Device::Cpu, 1);
        let b = Tensor::randn(&[32], DType::Bf16, Device::Cpu, 2);
        let r = mul(&a, &b);
        assert_eq!(r.dtype(), DType::Bf16);
        for v in r.to_vec() {
            assert_eq!(DType::Bf16.round(v), v);
        }
    }

    #[test]
    fn matmul_known() {
        runtime::reset();
        let a = t(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = t(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        assert_eq!(matmul(&a, &b).to_vec(), vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity() {
        runtime::reset();
        let a = t(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let eye = t(vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0], &[3, 3]);
        assert_eq!(matmul(&a, &eye).to_vec(), a.to_vec());
    }

    #[test]
    fn matmul_with_transposed_view() {
        runtime::reset();
        let a = t(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = t(vec![1.0, 0.0, 2.0, 1.0], &[2, 2]);
        // a @ b^T
        let r = matmul(&a, &b.t());
        assert_eq!(r.to_vec(), vec![1.0, 4.0, 3.0, 10.0]);
    }

    #[test]
    #[should_panic(expected = "inner dims")]
    fn matmul_bad_shapes_panics() {
        runtime::reset();
        matmul(&t(vec![0.0; 6], &[2, 3]), &t(vec![0.0; 4], &[2, 2]));
    }

    #[test]
    fn zero_width_matmul_and_bmm_return_empty() {
        runtime::reset();
        let a = t(vec![0.0; 6], &[2, 3]);
        let b = Tensor::zeros(&[3, 0], DType::F32, Device::Cpu);
        let r = matmul(&a, &b);
        assert_eq!(r.shape(), &[2, 0]);
        assert!(r.to_vec().is_empty());
        let a3 = Tensor::zeros(&[2, 2, 3], DType::F32, Device::Cpu);
        let b3 = Tensor::zeros(&[2, 3, 0], DType::F32, Device::Cpu);
        assert_eq!(bmm(&a3, &b3).shape(), &[2, 2, 0]);
    }

    #[test]
    fn zero_centroid_neg_sqdist_returns_empty() {
        runtime::reset();
        let w = t(vec![1.0, 2.0], &[2, 1]);
        let c = Tensor::zeros(&[0, 1], DType::F32, Device::Cpu);
        let r = neg_sqdist(&w, &c);
        assert_eq!(r.shape(), &[2, 0]);
        assert!(r.to_vec().is_empty());
    }

    #[test]
    fn parallel_matmul_matches_serial_reference() {
        runtime::reset();
        // Big enough to clear PAR_WORK_THRESHOLD and exercise the threaded
        // path; compare row-by-row against a straightforward serial product.
        let (m, k, n) = (96, 64, 80);
        let a = Tensor::randn(&[m, k], DType::F32, Device::Cpu, 21);
        let b = Tensor::randn(&[k, n], DType::F32, Device::Cpu, 22);
        assert!(m * k * n >= super::PAR_WORK_THRESHOLD);
        let fast = matmul(&a, &b).to_vec();
        let (av, bv) = (a.to_vec(), b.to_vec());
        for i in 0..m {
            for j in 0..n {
                let want: f32 = (0..k).map(|p| av[i * k + p] * bv[p * n + j]).sum();
                assert!((fast[i * n + j] - want).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn parallel_bmm_matches_big_batches() {
        runtime::reset();
        let (ba, m, k, n) = (12, 16, 32, 24);
        let a = Tensor::randn(&[ba, m, k], DType::F32, Device::Cpu, 31);
        let b = Tensor::randn(&[ba, k, n], DType::F32, Device::Cpu, 32);
        assert!(ba * m * k * n >= super::PAR_WORK_THRESHOLD);
        let r = bmm(&a, &b);
        for bi in [0, 5, 11] {
            let ab = matmul(
                &a.slice(0, bi, 1).reshape(&[m, k]),
                &b.slice(0, bi, 1).reshape(&[k, n]),
            );
            let rb = r.slice(0, bi, 1).reshape(&[m, n]);
            assert!(allclose(&ab, &rb, 1e-5));
        }
    }

    #[test]
    fn parallel_neg_sqdist_matches_serial() {
        runtime::reset();
        let (n, k, d) = (2048, 32, 4);
        let w = Tensor::randn(&[n, d], DType::F32, Device::Cpu, 41);
        let c = Tensor::randn(&[k, d], DType::F32, Device::Cpu, 42);
        assert!(n * k * d >= super::PAR_WORK_THRESHOLD);
        let fast = neg_sqdist(&w, &c).to_vec();
        let (wv, cv) = (w.to_vec(), c.to_vec());
        for i in (0..n).step_by(97) {
            for j in 0..k {
                let want: f32 = -(0..d)
                    .map(|p| {
                        let diff = wv[i * d + p] - cv[j * d + p];
                        diff * diff
                    })
                    .sum::<f32>();
                assert!((fast[i * k + j] - want).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn matmul_advances_clock() {
        runtime::reset();
        let a = Tensor::rand(&[64, 64], DType::F32, Device::gpu(), 1);
        matmul(&a, &a);
        assert!(runtime::sim_seconds() > 0.0);
    }

    #[test]
    fn bmm_matches_per_batch_matmul() {
        runtime::reset();
        let a = Tensor::randn(&[3, 2, 4], DType::F32, Device::Cpu, 1);
        let b = Tensor::randn(&[3, 4, 5], DType::F32, Device::Cpu, 2);
        let r = bmm(&a, &b);
        for bi in 0..3 {
            let ab = matmul(
                &a.slice(0, bi, 1).reshape(&[2, 4]),
                &b.slice(0, bi, 1).reshape(&[4, 5]),
            );
            let rb = r.slice(0, bi, 1).reshape(&[2, 5]);
            assert!(allclose(&ab, &rb, 1e-6));
        }
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        runtime::reset();
        let x = Tensor::randn(&[7, 11], DType::F32, Device::Cpu, 3);
        let s = softmax_lastdim(&x);
        for row in s.to_vec().chunks(11) {
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
            assert!(row.iter().all(|&v| v > 0.0));
        }
    }

    #[test]
    fn softmax_handles_large_logits() {
        runtime::reset();
        let x = t(vec![1000.0, 1000.0, -1000.0], &[1, 3]);
        let s = softmax_lastdim(&x).to_vec();
        assert!((s[0] - 0.5).abs() < 1e-5);
        assert!((s[1] - 0.5).abs() < 1e-5);
        assert!(s[2] < 1e-6);
    }

    #[test]
    fn log_softmax_is_log_of_softmax() {
        runtime::reset();
        let x = Tensor::randn(&[4, 9], DType::F32, Device::Cpu, 5);
        let ls = log_softmax_lastdim(&x).to_vec();
        let s = softmax_lastdim(&x).to_vec();
        for (l, p) in ls.iter().zip(&s) {
            assert!((l.exp() - p).abs() < 1e-5);
        }
    }

    #[test]
    fn reductions() {
        runtime::reset();
        let x = t(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(sum_all(&x).item(), 21.0);
        assert_eq!(mean_all(&x).item(), 3.5);
        assert_eq!(sum_axis(&x, 0).to_vec(), vec![5.0, 7.0, 9.0]);
        assert_eq!(sum_axis(&x, 1).to_vec(), vec![6.0, 15.0]);
    }

    #[test]
    fn sum_axis_3d() {
        runtime::reset();
        let x = Tensor::arange(24, DType::F32, Device::Cpu).reshape(&[2, 3, 4]);
        let s = sum_axis(&x, 1);
        assert_eq!(s.shape(), &[2, 4]);
        assert_eq!(s.get(&[0, 0]), 0.0 + 4.0 + 8.0);
        assert_eq!(s.get(&[1, 3]), 15.0 + 19.0 + 23.0);
    }

    #[test]
    fn argmax_rows() {
        runtime::reset();
        let x = t(vec![0.1, 0.9, 0.0, 0.3, 0.2, 0.5], &[2, 3]);
        assert_eq!(argmax_lastdim(&x), vec![1, 2]);
    }

    #[test]
    fn gather_scatter_roundtrip() {
        runtime::reset();
        let table = t(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]);
        let g = gather_rows(&table, &[2, 0, 2]);
        assert_eq!(g.to_vec(), vec![5.0, 6.0, 1.0, 2.0, 5.0, 6.0]);
        let back = scatter_add_rows(&g, &[2, 0, 2], 3);
        assert_eq!(back.to_vec(), vec![1.0, 2.0, 0.0, 0.0, 10.0, 12.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn gather_bad_id_panics() {
        runtime::reset();
        gather_rows(&t(vec![0.0; 4], &[2, 2]), &[5]);
    }

    #[test]
    fn neg_sqdist_known() {
        runtime::reset();
        let w = t(vec![0.0, 1.0, 2.0], &[3, 1]);
        let c = t(vec![0.0, 2.0], &[2, 1]);
        let d = neg_sqdist(&w, &c);
        assert_eq!(d.shape(), &[3, 2]);
        assert_eq!(d.to_vec(), vec![0.0, -4.0, -1.0, -1.0, -4.0, 0.0]);
    }

    #[test]
    fn neg_sqdist_vector_dim() {
        runtime::reset();
        let w = t(vec![0.0, 0.0, 3.0, 4.0], &[2, 2]);
        let c = t(vec![0.0, 0.0], &[1, 2]);
        let d = neg_sqdist(&w, &c);
        assert_eq!(d.to_vec(), vec![0.0, -25.0]);
    }

    #[test]
    fn closeness_helpers() {
        runtime::reset();
        let a = t(vec![1.0, 2.0], &[2]);
        let b = t(vec![1.0, 2.1], &[2]);
        assert!((max_abs_diff(&a, &b) - 0.1).abs() < 1e-6);
        assert!(allclose(&a, &b, 0.2));
        assert!(!allclose(&a, &b, 0.05));
        assert!((l2_norm(&t(vec![3.0, 4.0], &[2])) - 5.0).abs() < 1e-6);
    }

    proptest! {
        /// Softmax rows always sum to 1 and stay in (0, 1].
        #[test]
        fn prop_softmax_simplex(rows in 1usize..6, cols in 1usize..8, seed in any::<u64>()) {
            runtime::reset();
            let x = Tensor::randn(&[rows, cols], DType::F32, Device::Cpu, seed);
            let s = softmax_lastdim(&x);
            for row in s.to_vec().chunks(cols) {
                let sum: f32 = row.iter().sum();
                prop_assert!((sum - 1.0).abs() < 1e-4);
                prop_assert!(row.iter().all(|&v| (0.0..=1.0 + 1e-6).contains(&v)));
            }
        }

        /// Matmul distributes over addition: (a+b)c = ac + bc.
        #[test]
        fn prop_matmul_distributive(m in 1usize..4, k in 1usize..4, n in 1usize..4, seed in any::<u64>()) {
            runtime::reset();
            let a = Tensor::randn(&[m, k], DType::F32, Device::Cpu, seed);
            let b = Tensor::randn(&[m, k], DType::F32, Device::Cpu, seed.wrapping_add(1));
            let c = Tensor::randn(&[k, n], DType::F32, Device::Cpu, seed.wrapping_add(2));
            let lhs = matmul(&add(&a, &b), &c);
            let rhs = add(&matmul(&a, &c), &matmul(&b, &c));
            prop_assert!(allclose(&lhs, &rhs, 1e-3));
        }

        /// neg_sqdist is always ≤ 0 and zero exactly on identical rows.
        #[test]
        fn prop_neg_sqdist_sign(n in 1usize..6, k in 1usize..6, seed in any::<u64>()) {
            runtime::reset();
            let w = Tensor::randn(&[n, 1], DType::F32, Device::Cpu, seed);
            let d = neg_sqdist(&w, &w.slice(0, 0, k.min(n)));
            prop_assert!(d.to_vec().iter().all(|&v| v <= 0.0));
            // Diagonal of self-distance is zero.
            for i in 0..k.min(n) {
                prop_assert_eq!(d.get(&[i, i]), 0.0);
            }
        }

        /// scatter_add is the adjoint of gather: <gather(T,ids), G> == <T, scatter(G,ids)>.
        #[test]
        fn prop_gather_scatter_adjoint(v in 1usize..6, d in 1usize..4, n in 1usize..8, seed in any::<u64>()) {
            runtime::reset();
            let table = Tensor::randn(&[v, d], DType::F32, Device::Cpu, seed);
            let ids: Vec<usize> = (0..n).map(|i| (i * 7 + 3) % v).collect();
            let g = Tensor::randn(&[n, d], DType::F32, Device::Cpu, seed.wrapping_add(9));
            let lhs: f32 = mul(&gather_rows(&table, &ids), &g).with_data(|x| x.iter().sum());
            let rhs: f32 = mul(&table, &scatter_add_rows(&g, &ids, v)).with_data(|x| x.iter().sum());
            prop_assert!((lhs - rhs).abs() < 1e-3);
        }
    }
}
