//! Per-device memory pools and the GPU↔CPU transfer ledger.
//!
//! These counters are the measurement instrument behind Tables 1 and 2 of the
//! paper: "memory footprint" is the *peak* of live bytes registered with a
//! device pool, and "traffic" is what the [`TransferLedger`] accumulated.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Live/peak byte accounting for one device.
///
/// Thread-safe; shared by every [`crate::Storage`] allocated on the device so
/// that `Drop` can deregister from any thread.
#[derive(Debug, Default)]
pub struct PoolCell {
    live: AtomicUsize,
    peak: AtomicUsize,
    allocs: AtomicU64,
    frees: AtomicU64,
    /// Simulated device capacity in bytes; 0 = unlimited.
    capacity: AtomicUsize,
    /// Allocations that pushed `live` past `capacity` (the would-have-OOMed
    /// count — the simulation keeps running so the experiment can report
    /// *whether* a configuration fits, like the paper's 224 GB example).
    oom_events: AtomicU64,
}

impl PoolCell {
    /// Create an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register an allocation of `bytes`.
    pub fn alloc(&self, bytes: usize) {
        let live = self.live.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.allocs.fetch_add(1, Ordering::Relaxed);
        self.peak.fetch_max(live, Ordering::Relaxed);
        let cap = self.capacity.load(Ordering::Relaxed);
        if cap > 0 && live > cap {
            self.oom_events.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Set the simulated device capacity (0 = unlimited). Allocations past
    /// the capacity are recorded as OOM events, not failed — see
    /// [`PoolCell::oom_events`].
    pub fn set_capacity(&self, bytes: usize) {
        self.capacity.store(bytes, Ordering::Relaxed);
    }

    /// The simulated capacity (0 = unlimited).
    pub fn capacity(&self) -> usize {
        self.capacity.load(Ordering::Relaxed)
    }

    /// Number of allocations that exceeded the capacity.
    pub fn oom_events(&self) -> u64 {
        self.oom_events.load(Ordering::Relaxed)
    }

    /// `true` if the pool never exceeded its capacity (or has none).
    pub fn fits(&self) -> bool {
        self.oom_events() == 0
    }

    /// Deregister an allocation of `bytes`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if more bytes are freed than are live (an
    /// accounting bug in this crate, never a user error).
    pub fn free(&self, bytes: usize) {
        let prev = self.live.fetch_sub(bytes, Ordering::Relaxed);
        debug_assert!(prev >= bytes, "pool accounting went negative");
        self.frees.fetch_add(1, Ordering::Relaxed);
    }

    /// Bytes currently live on the device.
    pub fn live_bytes(&self) -> usize {
        self.live.load(Ordering::Relaxed)
    }

    /// High-water mark of live bytes since creation or the last
    /// [`PoolCell::reset_peak`].
    pub fn peak_bytes(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }

    /// Number of allocations performed.
    pub fn alloc_count(&self) -> u64 {
        self.allocs.load(Ordering::Relaxed)
    }

    /// Number of frees performed.
    pub fn free_count(&self) -> u64 {
        self.frees.load(Ordering::Relaxed)
    }

    /// Reset the peak to the current live value (to scope a measurement).
    pub fn reset_peak(&self) {
        self.peak
            .store(self.live.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Snapshot the counters.
    pub fn snapshot(&self) -> PoolSnapshot {
        PoolSnapshot {
            live_bytes: self.live_bytes(),
            peak_bytes: self.peak_bytes(),
            allocs: self.alloc_count(),
            frees: self.free_count(),
        }
    }
}

/// Point-in-time copy of a [`PoolCell`]'s counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolSnapshot {
    /// Bytes currently live.
    pub live_bytes: usize,
    /// Peak live bytes.
    pub peak_bytes: usize,
    /// Allocation count.
    pub allocs: u64,
    /// Free count.
    pub frees: u64,
}

/// Ledger of simulated host↔device copies.
///
/// `h2d` is host-to-device (CPU→GPU), `d2h` device-to-host (GPU→CPU, the
/// offload direction eDKM minimizes).
#[derive(Debug, Default)]
pub struct TransferLedger {
    h2d_bytes: AtomicUsize,
    d2h_bytes: AtomicUsize,
    h2d_txns: AtomicU64,
    d2h_txns: AtomicU64,
}

impl TransferLedger {
    /// Create an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a host-to-device copy.
    pub fn record_h2d(&self, bytes: usize) {
        self.h2d_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.h2d_txns.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a device-to-host copy.
    pub fn record_d2h(&self, bytes: usize) {
        self.d2h_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.d2h_txns.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot the counters.
    pub fn snapshot(&self) -> TransferSnapshot {
        TransferSnapshot {
            h2d_bytes: self.h2d_bytes.load(Ordering::Relaxed),
            d2h_bytes: self.d2h_bytes.load(Ordering::Relaxed),
            h2d_txns: self.h2d_txns.load(Ordering::Relaxed),
            d2h_txns: self.d2h_txns.load(Ordering::Relaxed),
        }
    }

    /// Zero all counters.
    pub fn reset(&self) {
        self.h2d_bytes.store(0, Ordering::Relaxed);
        self.d2h_bytes.store(0, Ordering::Relaxed);
        self.h2d_txns.store(0, Ordering::Relaxed);
        self.d2h_txns.store(0, Ordering::Relaxed);
    }
}

/// Point-in-time copy of a [`TransferLedger`]'s counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TransferSnapshot {
    /// Total CPU→GPU bytes.
    pub h2d_bytes: usize,
    /// Total GPU→CPU bytes.
    pub d2h_bytes: usize,
    /// CPU→GPU transaction count.
    pub h2d_txns: u64,
    /// GPU→CPU transaction count.
    pub d2h_txns: u64,
}

impl TransferSnapshot {
    /// Total bytes moved in either direction.
    pub fn total_bytes(&self) -> usize {
        self.h2d_bytes + self.d2h_bytes
    }

    /// Total transactions in either direction.
    pub fn total_txns(&self) -> u64 {
        self.h2d_txns + self.d2h_txns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_tracks_live_and_peak() {
        let p = PoolCell::new();
        p.alloc(100);
        p.alloc(50);
        assert_eq!(p.live_bytes(), 150);
        assert_eq!(p.peak_bytes(), 150);
        p.free(100);
        assert_eq!(p.live_bytes(), 50);
        assert_eq!(p.peak_bytes(), 150, "peak must persist after frees");
        p.alloc(10);
        assert_eq!(p.peak_bytes(), 150);
        assert_eq!(p.alloc_count(), 3);
        assert_eq!(p.free_count(), 1);
    }

    #[test]
    fn pool_reset_peak_scopes_measurement() {
        let p = PoolCell::new();
        p.alloc(1000);
        p.free(1000);
        assert_eq!(p.peak_bytes(), 1000);
        p.reset_peak();
        assert_eq!(p.peak_bytes(), 0);
        p.alloc(5);
        assert_eq!(p.peak_bytes(), 5);
    }

    #[test]
    fn pool_snapshot_matches() {
        let p = PoolCell::new();
        p.alloc(64);
        let s = p.snapshot();
        assert_eq!(
            s,
            PoolSnapshot {
                live_bytes: 64,
                peak_bytes: 64,
                allocs: 1,
                frees: 0
            }
        );
    }

    #[test]
    fn ledger_directions_are_independent() {
        let l = TransferLedger::new();
        l.record_d2h(4 << 20);
        l.record_d2h(4 << 20);
        l.record_h2d(1024);
        let s = l.snapshot();
        assert_eq!(s.d2h_bytes, 8 << 20);
        assert_eq!(s.d2h_txns, 2);
        assert_eq!(s.h2d_bytes, 1024);
        assert_eq!(s.h2d_txns, 1);
        assert_eq!(s.total_bytes(), (8 << 20) + 1024);
        assert_eq!(s.total_txns(), 3);
    }

    #[test]
    fn ledger_reset() {
        let l = TransferLedger::new();
        l.record_h2d(10);
        l.reset();
        assert_eq!(l.snapshot(), TransferSnapshot::default());
    }

    #[test]
    fn capacity_records_oom_without_failing() {
        let p = PoolCell::new();
        p.set_capacity(100);
        assert_eq!(p.capacity(), 100);
        p.alloc(60);
        assert!(p.fits());
        p.alloc(60); // 120 > 100: would have OOMed on real hardware
        assert!(!p.fits());
        assert_eq!(p.oom_events(), 1);
        // The simulation keeps running (live is still tracked).
        assert_eq!(p.live_bytes(), 120);
        p.free(60);
        p.alloc(10);
        assert_eq!(p.oom_events(), 1, "back under capacity: no new events");
    }

    #[test]
    fn zero_capacity_means_unlimited() {
        let p = PoolCell::new();
        p.alloc(usize::MAX / 2);
        assert!(p.fits());
        assert_eq!(p.oom_events(), 0);
    }

    #[test]
    fn pool_is_send_sync() {
        fn assert_ss<T: Send + Sync>() {}
        assert_ss::<PoolCell>();
        assert_ss::<TransferLedger>();
    }

    #[test]
    fn concurrent_accounting_is_consistent() {
        use std::sync::Arc;
        let p = Arc::new(PoolCell::new());
        let mut handles = vec![];
        for _ in 0..4 {
            let p = Arc::clone(&p);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    p.alloc(8);
                    p.free(8);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(p.live_bytes(), 0);
        assert_eq!(p.alloc_count(), 4000);
        assert_eq!(p.free_count(), 4000);
    }
}
