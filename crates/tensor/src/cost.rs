//! Analytic cost model and simulated clock.
//!
//! The paper's Table 2 reports wall-clock seconds for the forward+backward of
//! one attention layer on 8×A100 hardware we do not have. Per the
//! substitution rule (DESIGN.md §7) we model runtime analytically: every
//! simulated GEMM, elementwise pass, PCIe transfer, hash pass and all-gather
//! adds seconds to a [`SimClock`] according to a [`CostModel`]. Absolute
//! seconds are not a claim; the *ordering* between ablation configurations is.

use crate::Device;
use std::sync::atomic::{AtomicU64, Ordering};

/// Throughput/latency constants of the simulated machine.
///
/// Defaults are loosely A100-class so the Table 2 reproduction lands in the
/// same qualitative regime as the paper (compute-bound baseline, noticeable
/// PCIe cost, expensive network collectives).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Dense-math throughput of a GPU, FLOP/s.
    pub gpu_flops: f64,
    /// Dense-math throughput of the host, FLOP/s.
    pub cpu_flops: f64,
    /// PCIe bandwidth for host↔device copies, bytes/s.
    pub pcie_bps: f64,
    /// Fixed per-transfer latency, seconds.
    pub pcie_latency_s: f64,
    /// Inter-learner network bandwidth (ring all-gather), bytes/s.
    pub net_bps: f64,
    /// Fixed per-collective-hop latency, seconds.
    pub net_latency_s: f64,
    /// Throughput of the uniquification hash/group pass, bytes/s.
    pub hash_bps: f64,
    /// Cost of inspecting one provenance hop during marshaling, seconds.
    pub walk_hop_s: f64,
    /// Model PCIe copies as fully overlapped with compute (they cost
    /// ledger traffic but no wall-clock). The paper's training pipeline
    /// hides offload traffic behind GPU compute, which is why its Table 2
    /// baseline is not the slowest row; enable this to reproduce that
    /// runtime shape.
    pub overlap_pcie: bool,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            gpu_flops: 60e12,
            cpu_flops: 200e9,
            pcie_bps: 16e9,
            pcie_latency_s: 10e-6,
            net_bps: 5e9,
            net_latency_s: 50e-6,
            hash_bps: 8e9, // the uniquification pass runs GPU-side
            walk_hop_s: 1e-6,
            overlap_pcie: false,
        }
    }
}

impl CostModel {
    /// Seconds to execute `flops` floating-point operations on `device`.
    pub fn compute_s(&self, flops: f64, device: Device) -> f64 {
        let rate = if device.is_gpu() {
            self.gpu_flops
        } else {
            self.cpu_flops
        };
        flops / rate
    }

    /// Seconds for one host↔device copy of `bytes` (zero when
    /// [`CostModel::overlap_pcie`] hides copies behind compute).
    pub fn transfer_s(&self, bytes: usize) -> f64 {
        if self.overlap_pcie {
            return 0.0;
        }
        self.pcie_latency_s + bytes as f64 / self.pcie_bps
    }

    /// Seconds for a ring all-gather where each of `learners` contributes
    /// `bytes_per_learner`.
    pub fn all_gather_s(&self, bytes_per_learner: usize, learners: usize) -> f64 {
        if learners <= 1 {
            return 0.0;
        }
        let steps = (learners - 1) as f64;
        steps * (self.net_latency_s + bytes_per_learner as f64 / self.net_bps)
    }

    /// Seconds for the uniquification pass over `bytes` of weight data.
    pub fn hash_pass_s(&self, bytes: usize) -> f64 {
        bytes as f64 / self.hash_bps
    }

    /// Seconds for a marshaling graph walk of `hops` hops.
    pub fn walk_s(&self, hops: usize) -> f64 {
        hops as f64 * self.walk_hop_s
    }
}

/// Monotone simulated clock, accumulated in nanoseconds for atomicity.
#[derive(Debug, Default)]
pub struct SimClock {
    nanos: AtomicU64,
}

impl SimClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advance the clock by `seconds`.
    ///
    /// Negative or non-finite durations are ignored (the clock is monotone).
    pub fn advance(&self, seconds: f64) {
        if seconds.is_finite() && seconds > 0.0 {
            self.nanos
                .fetch_add((seconds * 1e9) as u64, Ordering::Relaxed);
        }
    }

    /// Current simulated time in seconds.
    pub fn seconds(&self) -> f64 {
        self.nanos.load(Ordering::Relaxed) as f64 / 1e9
    }

    /// Reset to time zero.
    pub fn reset(&self) {
        self.nanos.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_model_is_sane() {
        let m = CostModel::default();
        assert!(m.gpu_flops > m.cpu_flops);
        assert!(m.pcie_bps > m.net_bps);
    }

    #[test]
    fn compute_prefers_gpu() {
        let m = CostModel::default();
        let flops = 1e12;
        assert!(m.compute_s(flops, Device::gpu()) < m.compute_s(flops, Device::Cpu));
    }

    #[test]
    fn transfer_includes_latency() {
        let m = CostModel::default();
        assert!(m.transfer_s(0) >= m.pcie_latency_s);
        let big = m.transfer_s(16_000_000_000);
        assert!((big - (1.0 + m.pcie_latency_s)).abs() < 1e-9);
    }

    #[test]
    fn all_gather_scales_with_learners() {
        let m = CostModel::default();
        assert_eq!(m.all_gather_s(1 << 20, 1), 0.0);
        let two = m.all_gather_s(1 << 20, 2);
        let eight = m.all_gather_s(1 << 20, 8);
        assert!(eight > two);
        // (L-1) scaling.
        assert!((eight / two - 7.0).abs() < 1e-9);
    }

    #[test]
    fn clock_accumulates_and_resets() {
        let c = SimClock::new();
        c.advance(1.5);
        c.advance(0.5);
        assert!((c.seconds() - 2.0).abs() < 1e-6);
        c.reset();
        assert_eq!(c.seconds(), 0.0);
    }

    #[test]
    fn clock_ignores_bad_durations() {
        let c = SimClock::new();
        c.advance(-1.0);
        c.advance(f64::NAN);
        c.advance(f64::INFINITY);
        assert_eq!(c.seconds(), 0.0);
    }

    #[test]
    fn overlapped_pcie_is_free_on_the_clock() {
        let m = CostModel {
            overlap_pcie: true,
            ..CostModel::default()
        };
        assert_eq!(m.transfer_s(1 << 30), 0.0);
        // Collectives are never overlapped (they block the backward pass).
        assert!(m.all_gather_s(1 << 20, 8) > 0.0);
    }

    #[test]
    fn hash_and_walk_costs() {
        let m = CostModel::default();
        assert!((m.hash_pass_s(8_000_000_000) - 1.0).abs() < 1e-9);
        assert!((m.walk_s(4) - 4.0 * m.walk_hop_s).abs() < 1e-12);
        assert_eq!(m.walk_s(0), 0.0);
    }
}
