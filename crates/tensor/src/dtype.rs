//! Element dtypes with bit-exact 16-bit encodings.
//!
//! Values are always *held* as `f32` in storage, but a tensor tagged
//! [`DType::Bf16`] or [`DType::F16`] only ever contains values that are
//! exactly representable in that encoding: every constructor and cast rounds
//! through the 16-bit bit pattern. This guarantees the property the paper's
//! uniquification step relies on (Section 2.2): a 16-bit weight tensor has at
//! most 2^16 = 65 536 distinct values.

use serde::{Deserialize, Serialize};

/// Logical element type of a [`crate::Tensor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DType {
    /// 32-bit IEEE-754 float.
    F32,
    /// 16-bit IEEE-754 half-precision float.
    F16,
    /// bfloat16: f32 with the mantissa truncated to 7 bits.
    Bf16,
}

impl DType {
    /// Bytes one element occupies on a (simulated) device.
    #[inline]
    pub fn size_bytes(self) -> usize {
        match self {
            DType::F32 => 4,
            DType::F16 | DType::Bf16 => 2,
        }
    }

    /// `true` for the 16-bit encodings whose bit patterns fit in a `u16`.
    #[inline]
    pub fn is_16bit(self) -> bool {
        matches!(self, DType::F16 | DType::Bf16)
    }

    /// Round `v` to the nearest value representable in this dtype.
    ///
    /// For [`DType::F32`] this is the identity.
    #[inline]
    pub fn round(self, v: f32) -> f32 {
        match self {
            DType::F32 => v,
            DType::Bf16 => bf16_to_f32(f32_to_bf16(v)),
            DType::F16 => f16_to_f32(f32_to_f16(v)),
        }
    }

    /// Encode `v` as the 16-bit pattern of this dtype.
    ///
    /// Returns `None` for [`DType::F32`], whose patterns do not fit in `u16`.
    #[inline]
    pub fn encode16(self, v: f32) -> Option<u16> {
        match self {
            DType::F32 => None,
            DType::Bf16 => Some(f32_to_bf16(v)),
            DType::F16 => Some(f32_to_f16(v)),
        }
    }

    /// Decode a 16-bit pattern of this dtype back to `f32`.
    ///
    /// Returns `None` for [`DType::F32`].
    #[inline]
    pub fn decode16(self, bits: u16) -> Option<f32> {
        match self {
            DType::F32 => None,
            DType::Bf16 => Some(bf16_to_f32(bits)),
            DType::F16 => Some(f16_to_f32(bits)),
        }
    }
}

impl std::fmt::Display for DType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DType::F32 => write!(f, "f32"),
            DType::F16 => write!(f, "f16"),
            DType::Bf16 => write!(f, "bf16"),
        }
    }
}

/// Convert `f32` to bfloat16 bits with round-to-nearest-even.
#[inline]
pub fn f32_to_bf16(v: f32) -> u16 {
    let bits = v.to_bits();
    if v.is_nan() {
        // Preserve NaN, force a quiet-NaN pattern that survives truncation.
        return ((bits >> 16) as u16) | 0x0040;
    }
    // Round to nearest even on the truncated 16 low bits.
    let round_bit = 0x0000_8000u32;
    let lsb = (bits >> 16) & 1;
    ((bits.wrapping_add(round_bit - 1 + lsb)) >> 16) as u16
}

/// Convert bfloat16 bits to `f32` (exact).
#[inline]
pub fn bf16_to_f32(bits: u16) -> f32 {
    f32::from_bits((bits as u32) << 16)
}

/// Convert `f32` to IEEE-754 half-precision bits with round-to-nearest-even.
#[inline]
pub fn f32_to_f16(v: f32) -> u16 {
    let bits = v.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let mant = bits & 0x007f_ffff;

    if exp == 0xff {
        // Inf / NaN.
        return if mant == 0 {
            sign | 0x7c00
        } else {
            sign | 0x7e00 // quiet NaN
        };
    }

    // Re-bias exponent: f32 bias 127, f16 bias 15.
    let unbiased = exp - 127;
    if unbiased > 15 {
        return sign | 0x7c00; // overflow -> inf
    }
    if unbiased >= -14 {
        // Normal half.
        let half_exp = (unbiased + 15) as u32;
        let half_mant = mant >> 13;
        let rem = mant & 0x1fff;
        let mut h = ((half_exp << 10) | half_mant) as u16;
        // Round to nearest even.
        if rem > 0x1000 || (rem == 0x1000 && (half_mant & 1) == 1) {
            h = h.wrapping_add(1); // carries into the exponent correctly
        }
        return sign | h;
    }
    if unbiased >= -25 {
        // Subnormal half.
        let shift = (-14 - unbiased) as u32; // 1..=11
        let full_mant = mant | 0x0080_0000; // implicit leading 1
        let half_mant = full_mant >> (13 + shift);
        let rem_mask = (1u32 << (13 + shift)) - 1;
        let rem = full_mant & rem_mask;
        let halfway = 1u32 << (12 + shift);
        let mut h = half_mant as u16;
        if rem > halfway || (rem == halfway && (h & 1) == 1) {
            h = h.wrapping_add(1);
        }
        return sign | h;
    }
    sign // underflow to signed zero
}

/// Convert IEEE-754 half-precision bits to `f32` (exact).
#[inline]
pub fn f16_to_f32(bits: u16) -> f32 {
    let sign = ((bits & 0x8000) as u32) << 16;
    let exp = ((bits >> 10) & 0x1f) as u32;
    let mant = (bits & 0x03ff) as u32;

    if exp == 0 {
        if mant == 0 {
            return f32::from_bits(sign);
        }
        // Subnormal: value = mant * 2^-24. Normalize around the highest set bit.
        let h = 31 - mant.leading_zeros(); // 0..=9
        let exp_f32 = 103 + h; // h - 24 + 127
        let frac = mant ^ (1 << h); // drop the leading bit
        return f32::from_bits(sign | (exp_f32 << 23) | (frac << (23 - h)));
    }
    if exp == 0x1f {
        return if mant == 0 {
            f32::from_bits(sign | 0x7f80_0000)
        } else {
            f32::from_bits(sign | 0x7fc0_0000)
        };
    }
    let exp_f32 = exp + 127 - 15;
    f32::from_bits(sign | (exp_f32 << 23) | (mant << 13))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn sizes() {
        assert_eq!(DType::F32.size_bytes(), 4);
        assert_eq!(DType::F16.size_bytes(), 2);
        assert_eq!(DType::Bf16.size_bytes(), 2);
        assert!(!DType::F32.is_16bit());
        assert!(DType::F16.is_16bit());
        assert!(DType::Bf16.is_16bit());
    }

    #[test]
    fn display() {
        assert_eq!(DType::F32.to_string(), "f32");
        assert_eq!(DType::Bf16.to_string(), "bf16");
        assert_eq!(DType::F16.to_string(), "f16");
    }

    #[test]
    fn bf16_simple_values() {
        for v in [0.0f32, 1.0, -1.0, 0.5, 2.0, -3.0, 1024.0] {
            assert_eq!(DType::Bf16.round(v), v, "{v} must be bf16-exact");
        }
    }

    #[test]
    fn f16_simple_values() {
        for v in [0.0f32, 1.0, -1.0, 0.5, 2.0, -3.0, 1024.0, 0.25] {
            assert_eq!(DType::F16.round(v), v, "{v} must be f16-exact");
        }
    }

    #[test]
    fn f32_round_is_identity() {
        assert_eq!(DType::F32.round(0.1), 0.1);
        assert_eq!(DType::F32.encode16(1.0), None);
        assert_eq!(DType::F32.decode16(0), None);
    }

    #[test]
    fn bf16_known_patterns() {
        // 1.0f32 = 0x3f800000 -> bf16 0x3f80.
        assert_eq!(f32_to_bf16(1.0), 0x3f80);
        assert_eq!(bf16_to_f32(0x3f80), 1.0);
        // -2.0 = 0xc0000000 -> 0xc000.
        assert_eq!(f32_to_bf16(-2.0), 0xc000);
    }

    #[test]
    fn f16_known_patterns() {
        assert_eq!(f32_to_f16(1.0), 0x3c00);
        assert_eq!(f16_to_f32(0x3c00), 1.0);
        assert_eq!(f32_to_f16(-2.0), 0xc000);
        assert_eq!(f32_to_f16(65504.0), 0x7bff); // max finite half
        assert_eq!(f32_to_f16(1e6), 0x7c00); // overflow -> +inf
        assert!(f16_to_f32(0x7c00).is_infinite());
    }

    #[test]
    fn f16_subnormals_roundtrip() {
        // Smallest positive subnormal half = 2^-24.
        let tiny = 2.0f32.powi(-24);
        assert_eq!(f32_to_f16(tiny), 0x0001);
        assert_eq!(f16_to_f32(0x0001), tiny);
        // Largest subnormal.
        let big_sub = f16_to_f32(0x03ff);
        assert_eq!(f32_to_f16(big_sub), 0x03ff);
    }

    #[test]
    fn nan_handling() {
        assert!(bf16_to_f32(f32_to_bf16(f32::NAN)).is_nan());
        assert!(f16_to_f32(f32_to_f16(f32::NAN)).is_nan());
        assert!(DType::Bf16.round(f32::NAN).is_nan());
    }

    #[test]
    fn infinity_handling() {
        assert_eq!(bf16_to_f32(f32_to_bf16(f32::INFINITY)), f32::INFINITY);
        assert_eq!(f16_to_f32(f32_to_f16(f32::NEG_INFINITY)), f32::NEG_INFINITY);
    }

    #[test]
    fn rounding_is_idempotent_examples() {
        for dt in [DType::Bf16, DType::F16] {
            for v in [0.1f32, 0.3333, -7.77, 123.456, 1e-3] {
                let once = dt.round(v);
                assert_eq!(dt.round(once), once, "{dt} rounding must be idempotent");
            }
        }
    }

    proptest! {
        /// Round-tripping any finite f32 through bf16 decode/encode is stable:
        /// decode(encode(x)) re-encodes to the same bits.
        #[test]
        fn prop_bf16_idempotent(v in prop::num::f32::NORMAL) {
            let bits = f32_to_bf16(v);
            let back = bf16_to_f32(bits);
            prop_assert_eq!(f32_to_bf16(back), bits);
        }

        #[test]
        fn prop_f16_idempotent(v in -65000.0f32..65000.0) {
            let bits = f32_to_f16(v);
            let back = f16_to_f32(bits);
            prop_assert_eq!(f32_to_f16(back), bits);
        }

        /// Every u16 pattern decodes to an f32 that encodes back to itself
        /// (modulo NaN payload normalization).
        #[test]
        fn prop_bf16_all_patterns_roundtrip(bits in any::<u16>()) {
            let v = bf16_to_f32(bits);
            if v.is_nan() {
                prop_assert!(bf16_to_f32(f32_to_bf16(v)).is_nan());
            } else {
                prop_assert_eq!(f32_to_bf16(v), bits);
            }
        }

        #[test]
        fn prop_f16_all_patterns_roundtrip(bits in any::<u16>()) {
            let v = f16_to_f32(bits);
            if v.is_nan() {
                prop_assert!(f16_to_f32(f32_to_f16(v)).is_nan());
            } else {
                prop_assert_eq!(f32_to_f16(v), bits);
            }
        }

        /// bf16 rounding error is bounded by the ulp at the magnitude of v.
        #[test]
        fn prop_bf16_error_bound(v in -1.0e4f32..1.0e4) {
            let r = DType::Bf16.round(v);
            // bf16 has 8 mantissa bits (incl. implicit), ulp <= |v| * 2^-7 roughly.
            let bound = v.abs() * (1.0 / 128.0) + 1e-30;
            prop_assert!((r - v).abs() <= bound, "v={v} r={r}");
        }
    }
}
