//! # edkm-cluster
//!
//! A multi-replica serving fleet behind a load- and prefix-aware router.
//!
//! A [`Cluster`] owns N [`ServeEngine`] replicas — each wrapping any
//! [`ServeModel`], including tensor-parallel sharded models — and hands out
//! cloneable [`RouterHandle`]s exposing the same submit/stream/cancel
//! surface as [`EngineHandle`]. The router layers
//! four policies on top of replica dispatch:
//!
//! * **Load-aware scoring** — each replica is scored
//!   `in_flight + min(1, kv_live/kv_peak)` from its live handle and
//!   published [`StatsSnapshot`]; dispatch goes to the minimum.
//! * **Prefix affinity** — prompts are fingerprinted with the same
//!   block-granular radix chunking the KV pool's prefix index uses
//!   ([`edkm_core::prefix_fingerprints`]), and follow-up chat turns are
//!   routed to the replica that already holds their prefix blocks, with
//!   spill to the least-loaded replica when the sticky one is saturated.
//! * **Tenant fairness** — optional per-tenant in-flight caps and a
//!   token-bucket rate limit, rejected with typed [`RouteError`]s.
//! * **Hedged dispatch** — a request whose first token has not arrived
//!   within a straggler threshold is re-submitted to a second replica;
//!   the first responder wins and the loser is cancelled synchronously,
//!   so every token index is delivered exactly once.
//!
//! Replicas can be [drained](Cluster::drain) (no new dispatch, in-flight
//! finishes), [killed](Cluster::kill) (in-flight work is transparently
//! re-submitted to survivors from the original prompts — bit-identical
//! tokens, since sampling is seeded per request, never per placement), and
//! [respawned](Cluster::respawn).
//!
//! ```
//! use edkm_cluster::{Cluster, ClusterConfig};
//! use edkm_core::{CompressSpec, KvBlockConfig, PalettizedModel, Request, TokenEvent};
//! use edkm_nn::{LlamaConfig, LlamaModel};
//! use edkm_tensor::{DType, Device};
//!
//! let cfg = LlamaConfig { vocab: 64, d_model: 32, n_heads: 2, n_layers: 2, d_ff: 64, max_seq: 48 };
//! let dense = LlamaModel::new(cfg, DType::Bf16, Device::Cpu, 0);
//! let mut spec = CompressSpec::with_bits(3);
//! spec.dkm.iters = 2;
//! let model = PalettizedModel::from_dense(&dense, &spec).unwrap();
//! let kv = KvBlockConfig { block_tokens: 4, max_blocks: 0 };
//! // Each replica must own its own KV pool: `with_kv_config` replaces it.
//! let replicas: Vec<_> = (0..2)
//!     .map(|_| model.clone().with_kv_config(kv).with_prefix_cache(true))
//!     .collect();
//! let cluster = Cluster::new(replicas, ClusterConfig::default());
//! let router = cluster.handle();
//! let (_id, mut stream) = router.submit(Request::new(vec![1, 2, 3]).max_new_tokens(4)).unwrap();
//! let resp = stream.wait().unwrap();
//! assert_eq!(resp.generated, 4);
//! cluster.shutdown();
//! ```

#![warn(missing_docs)]

pub mod supervisor;

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use edkm_core::engine::{
    CancelOutcome, EngineConfig, EngineHandle, Request, RequestId, ServeEngine, StatsSnapshot,
    StreamPoll, SubmitError, TokenEvent, TokenStream,
};
use edkm_core::infer::ServeModel;
use edkm_core::kv::{prefix_fingerprints, KvBlockPool, PrefixHasher};
use edkm_core::serve::{Priority, ServeResponse};

pub use supervisor::{
    BreakerState, DegradeEvent, DegradeLevel, Supervisor, SupervisorAction, SupervisorConfig,
};

/// How many distinct prefix fingerprints the affinity map retains before
/// evicting the oldest (FIFO) entries.
const AFFINITY_CAPACITY: usize = 4096;

/// Rounds of pick-and-submit the router retries when replicas disappear
/// between scoring and submission before giving up.
const DISPATCH_ROUNDS: usize = 8;

/// Polling slice used while racing a hedged duplicate against the primary.
const HEDGE_SLICE: Duration = Duration::from_millis(2);

// ---------------------------------------------------------------------------
// Public configuration and error types
// ---------------------------------------------------------------------------

/// Per-tenant admission policy: a concurrent in-flight cap plus a token
/// bucket refilled continuously at `refill_per_sec`.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantPolicy {
    /// Maximum requests a single tenant may have in flight at once.
    pub max_in_flight: usize,
    /// Token-bucket capacity; each admission spends one token.
    pub bucket_capacity: f64,
    /// Bucket refill rate in tokens per second.
    pub refill_per_sec: f64,
}

impl Default for TenantPolicy {
    fn default() -> Self {
        TenantPolicy {
            max_in_flight: 64,
            bucket_capacity: 256.0,
            refill_per_sec: 64.0,
        }
    }
}

/// Router configuration for a [`Cluster`].
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Configuration applied to every replica engine.
    pub engine: EngineConfig,
    /// Route follow-up prompts to the replica already holding their prefix.
    pub affinity: bool,
    /// In-flight count at which a sticky replica overflows to the
    /// least-loaded replica instead. `0` means `2 * engine.max_batch`.
    pub spill_threshold: usize,
    /// Hedge a request to a second replica when its first token has not
    /// arrived within this budget. `None` disables hedging.
    pub hedge_after: Option<Duration>,
    /// Per-tenant fairness policy for the `*_for` submit variants.
    /// `None` admits every tenant unconditionally.
    pub tenancy: Option<TenantPolicy>,
    /// Speculative draft budget restored to every replica when the degrade
    /// ladder recovers below [`DegradeLevel::ShrinkDraft`]. Only
    /// meaningful for fleets whose engines decode speculatively; the
    /// retune is a no-op on plain engines either way.
    pub draft_k_full: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            engine: EngineConfig::default(),
            affinity: true,
            spill_threshold: 0,
            hedge_after: None,
            tenancy: None,
            draft_k_full: 4,
        }
    }
}

/// Typed rejection from the router's admission and dispatch path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteError {
    /// No replica is accepting work: all are dead or draining.
    NoReplicas,
    /// Every active replica refused the request at capacity
    /// ([`RouterHandle::try_submit`] only — the blocking path waits).
    Saturated,
    /// The tenant's token bucket is empty.
    RateLimited {
        /// The tenant that was rejected.
        tenant: String,
    },
    /// The tenant is at its in-flight cap.
    TenantSaturated {
        /// The tenant that was rejected.
        tenant: String,
    },
    /// The request was shed by the degrade ladder: under sustained
    /// pressure the router stops admitting low-value traffic before it
    /// stops serving anyone (see [`DegradeLevel`]).
    Shed {
        /// The ladder level that refused the request.
        level: u8,
    },
    /// The cluster was shut down.
    ShutDown,
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouteError::NoReplicas => write!(f, "no replica is accepting work"),
            RouteError::Saturated => write!(f, "every active replica is at capacity"),
            RouteError::RateLimited { tenant } => {
                write!(f, "tenant {tenant:?} is rate-limited")
            }
            RouteError::TenantSaturated { tenant } => {
                write!(f, "tenant {tenant:?} is at its in-flight cap")
            }
            RouteError::Shed { level } => {
                write!(f, "request shed by degrade ladder level {level}")
            }
            RouteError::ShutDown => write!(f, "cluster is shut down"),
        }
    }
}

impl std::error::Error for RouteError {}

/// Typed result of [`Cluster::drain`], mirroring
/// [`CancelOutcome`]: draining is idempotent, and every
/// outcome says what the slot was already doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrainOutcome {
    /// The replica was active and is now draining: no new dispatch, and
    /// in-flight work runs to its terminal events.
    Draining,
    /// The replica was already draining — nothing changed. Repeating the
    /// call returns this again.
    AlreadyDraining,
    /// The replica is dead; there is nothing to drain. (A dead slot stays
    /// dead until [`Cluster::respawn`].)
    Dead,
}

impl DrainOutcome {
    /// `true` if this call is the one that started the drain.
    pub fn started_drain(self) -> bool {
        matches!(self, DrainOutcome::Draining)
    }
}

impl std::fmt::Display for DrainOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DrainOutcome::Draining => write!(f, "draining"),
            DrainOutcome::AlreadyDraining => write!(f, "already draining"),
            DrainOutcome::Dead => write!(f, "dead"),
        }
    }
}

/// Cluster-level request identifier, assigned by the router. Stable across
/// hedging and replica failover; the [`ServeResponse::id`] delivered on a
/// [`ClusterStream`] is rewritten to this value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RouteId(u64);

impl RouteId {
    /// The raw numeric id.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for RouteId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "route-{}", self.0)
    }
}

/// Lifecycle state of one replica slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaState {
    /// Accepting dispatch.
    Active,
    /// No new dispatch; in-flight work runs to its terminal event.
    Draining,
    /// Worker gone; slot awaits [`Cluster::respawn`].
    Dead,
}

/// A point-in-time view of the fleet: per-replica engine snapshots plus the
/// router's own counters.
#[derive(Debug, Clone)]
pub struct ClusterStats {
    /// Lifecycle state and latest [`StatsSnapshot`] per replica, slot order.
    pub replicas: Vec<(ReplicaState, StatsSnapshot)>,
    /// Requests the router dispatched over its lifetime.
    pub routed: u64,
    /// Dispatches that landed on their prefix-affinity replica.
    pub affinity_hits: u64,
    /// Dispatches whose sticky replica was saturated and spilled elsewhere.
    pub spills: u64,
    /// Hedged duplicates submitted for straggling first tokens.
    pub hedges: u64,
    /// Requests re-submitted to a survivor after their replica died.
    pub rerouted: u64,
    /// Requests refused by the degrade ladder ([`RouteError::Shed`]).
    pub shed: u64,
    /// Current degrade-ladder level (0 = full service).
    pub degrade_level: u8,
    /// Every ladder transition so far, in order (see [`DegradeEvent`]).
    pub degrade_events: Vec<DegradeEvent>,
}

impl ClusterStats {
    /// Fraction of routed requests that hit their affinity replica.
    pub fn affinity_hit_rate(&self) -> f64 {
        if self.routed == 0 {
            0.0
        } else {
            self.affinity_hits as f64 / self.routed as f64
        }
    }

    /// Sum of per-replica KV high-water marks — the fleet-wide cache
    /// footprint a placement policy commits to.
    pub fn aggregate_kv_peak_bytes(&self) -> usize {
        self.replicas.iter().map(|(_, s)| s.kv_peak_bytes).sum()
    }

    /// Total tokens generated across the fleet.
    pub fn tokens_generated(&self) -> u64 {
        self.replicas.iter().map(|(_, s)| s.tokens_generated).sum()
    }
}

// ---------------------------------------------------------------------------
// Router internals
// ---------------------------------------------------------------------------

struct Slot {
    handle: EngineHandle,
    state: ReplicaState,
    /// Circuit-breaker dispatch gate: a closed (`false`) gate keeps the
    /// replica out of the candidate list even while its engine is Active.
    /// Owned by the supervisor; `true` on (re)spawn.
    gate_open: bool,
}

struct TenantState {
    in_flight: usize,
    bucket: f64,
    last_refill: Instant,
}

/// FIFO-bounded map from prefix fingerprint to the replica holding those
/// KV blocks. Re-inserting an existing fingerprint updates the replica
/// without extending its lifetime.
struct AffinityMap {
    map: HashMap<u64, usize>,
    order: VecDeque<u64>,
    cap: usize,
}

impl AffinityMap {
    fn insert(&mut self, fp: u64, replica: usize) {
        if self.map.insert(fp, replica).is_none() {
            self.order.push_back(fp);
            if self.order.len() > self.cap {
                if let Some(old) = self.order.pop_front() {
                    self.map.remove(&old);
                }
            }
        }
    }
}

/// Live bookkeeping for one routed request. `replica`/`engine_id` always
/// name the engine currently producing the stream (updated under the routes
/// lock on hedge promotion and failover).
struct RouteEntry {
    replica: usize,
    engine_id: RequestId,
    request: Request,
    tenant: Option<String>,
}

/// One candidate replica for a dispatch, in preference order.
struct Pick {
    replica: usize,
    handle: EngineHandle,
    affinity_hit: bool,
    spilled: bool,
}

/// A request placed on a concrete engine: the unit swapped in on hedge
/// wins and failover.
struct Placement {
    replica: usize,
    engine_id: RequestId,
    stream: TokenStream,
}

struct RouterInner {
    cfg: ClusterConfig,
    block_tokens: usize,
    slots: Mutex<Vec<Slot>>,
    affinity: Mutex<AffinityMap>,
    tenants: Mutex<HashMap<String, TenantState>>,
    routes: Mutex<HashMap<u64, RouteEntry>>,
    shutdown: AtomicBool,
    next_route: AtomicU64,
    routed: AtomicU64,
    affinity_hits: AtomicU64,
    spills: AtomicU64,
    hedges: AtomicU64,
    rerouted: AtomicU64,
    shed: AtomicU64,
    /// Current degrade-ladder level; admission and hedging consult it with
    /// one relaxed load (the chaos-off cost).
    degrade_level: AtomicU8,
    degrade_events: Mutex<Vec<DegradeEvent>>,
}

impl RouterInner {
    fn effective_spill_threshold(&self) -> usize {
        if self.cfg.spill_threshold == 0 {
            2 * self.cfg.engine.max_batch.max(1)
        } else {
            self.cfg.spill_threshold
        }
    }

    /// Longest cached prefix of `prompt` → owning replica, probing the
    /// rolling fingerprint at every prefix length, longest first.
    fn affinity_probe(&self, prompt: &[usize]) -> Option<usize> {
        if prompt.is_empty() {
            return None;
        }
        let mut hasher = PrefixHasher::new();
        let fps: Vec<u64> = prompt.iter().map(|&t| hasher.push(t)).collect();
        let map = self.affinity.lock().expect("affinity map poisoned");
        fps.iter().rev().find_map(|fp| map.map.get(fp).copied())
    }

    /// Record that `replica` now holds `prompt`'s prefix blocks: every
    /// block-aligned prefix plus the whole prompt, matching the radix
    /// index granularity in the KV pool.
    fn record_affinity(&self, prompt: &[usize], replica: usize) {
        if !self.cfg.affinity || prompt.is_empty() {
            return;
        }
        let fps = prefix_fingerprints(prompt, self.block_tokens);
        let mut map = self.affinity.lock().expect("affinity map poisoned");
        for (_, fp) in fps {
            map.insert(fp, replica);
        }
    }

    /// Score the active replicas for `prompt` and return them in dispatch
    /// preference order: the sticky (affinity) replica first when present
    /// and under the spill threshold, then ascending load score.
    fn candidates(
        &self,
        prompt: &[usize],
        exclude: Option<usize>,
        use_affinity: bool,
    ) -> Result<Vec<Pick>, RouteError> {
        if self.shutdown.load(Ordering::Relaxed) {
            return Err(RouteError::ShutDown);
        }
        fn load_score(slot: &Slot) -> f64 {
            let stats = slot.handle.stats();
            let kv_frac = if stats.kv_peak_bytes == 0 {
                0.0
            } else {
                (stats.kv_live_bytes as f64 / stats.kv_peak_bytes as f64).min(1.0)
            };
            slot.handle.in_flight() as f64 + kv_frac
        }
        let mut scored: Vec<(usize, EngineHandle, f64)> = Vec::new();
        {
            let slots = self.slots.lock().expect("slots poisoned");
            let mut gated_out = false;
            for (i, slot) in slots.iter().enumerate() {
                if slot.state != ReplicaState::Active || Some(i) == exclude {
                    continue;
                }
                if !slot.gate_open {
                    gated_out = true;
                    continue;
                }
                scored.push((i, slot.handle.clone(), load_score(slot)));
            }
            // Every active replica is breaker-gated: dispatch to them
            // anyway. An open breaker sheds load from a struggling replica
            // while alternatives exist; it never turns a degraded fleet
            // into a total outage.
            if scored.is_empty() && gated_out {
                for (i, slot) in slots.iter().enumerate() {
                    if slot.state != ReplicaState::Active || Some(i) == exclude {
                        continue;
                    }
                    scored.push((i, slot.handle.clone(), load_score(slot)));
                }
            }
        }
        if scored.is_empty() {
            return Err(RouteError::NoReplicas);
        }
        scored.sort_by(|a, b| a.2.total_cmp(&b.2).then(a.0.cmp(&b.0)));

        let mut sticky_pos = None;
        let mut spilled = false;
        if use_affinity && self.cfg.affinity {
            if let Some(rep) = self.affinity_probe(prompt) {
                if let Some(pos) = scored.iter().position(|(i, ..)| *i == rep) {
                    if scored[pos].1.in_flight() < self.effective_spill_threshold() {
                        sticky_pos = Some(pos);
                    } else {
                        spilled = true;
                    }
                }
            }
        }

        let mut picks = Vec::with_capacity(scored.len());
        if let Some(pos) = sticky_pos {
            let (i, h, _) = scored.remove(pos);
            picks.push(Pick {
                replica: i,
                handle: h,
                affinity_hit: true,
                spilled: false,
            });
        }
        for (i, h, _) in scored {
            picks.push(Pick {
                replica: i,
                handle: h,
                affinity_hit: false,
                spilled,
            });
        }
        Ok(picks)
    }

    /// Mark a replica Draining after its engine refused a submit with
    /// `ShutDown` — its state was changed behind the router's back.
    fn note_unavailable(&self, replica: usize) {
        let mut slots = self.slots.lock().expect("slots poisoned");
        if let Some(slot) = slots.get_mut(replica) {
            if slot.state == ReplicaState::Active {
                slot.state = ReplicaState::Draining;
            }
        }
    }

    fn after_dispatch(&self, pick: &Pick, prompt: &[usize]) {
        self.routed.fetch_add(1, Ordering::Relaxed);
        if pick.affinity_hit {
            self.affinity_hits.fetch_add(1, Ordering::Relaxed);
        }
        if pick.spilled {
            self.spills.fetch_add(1, Ordering::Relaxed);
        }
        self.record_affinity(prompt, pick.replica);
    }

    /// Place `request` on the best replica. Blocking mode waits on the
    /// chosen replica's queue; non-blocking mode walks the candidate list
    /// and reports [`RouteError::Saturated`] when everyone is full.
    fn dispatch(&self, request: &Request, blocking: bool) -> Result<Placement, RouteError> {
        for _ in 0..DISPATCH_ROUNDS {
            let picks = self.candidates(request.prompt(), None, true)?;
            if blocking {
                let pick = &picks[0];
                match pick.handle.submit(request.clone()) {
                    Ok((engine_id, stream)) => {
                        self.after_dispatch(pick, request.prompt());
                        return Ok(Placement {
                            replica: pick.replica,
                            engine_id,
                            stream,
                        });
                    }
                    Err(_) => {
                        self.note_unavailable(pick.replica);
                        continue;
                    }
                }
            }
            let mut saw_full = false;
            for pick in &picks {
                match pick.handle.try_submit(request.clone()) {
                    Ok((engine_id, stream)) => {
                        self.after_dispatch(pick, request.prompt());
                        return Ok(Placement {
                            replica: pick.replica,
                            engine_id,
                            stream,
                        });
                    }
                    Err(SubmitError::Full) => saw_full = true,
                    Err(SubmitError::ShutDown) => self.note_unavailable(pick.replica),
                }
            }
            if saw_full {
                return Err(RouteError::Saturated);
            }
        }
        Err(RouteError::ShutDown)
    }

    /// Token-bucket + in-flight admission for one tenant. Reserves a slot
    /// on success; the caller must release it via [`Self::tenant_release`]
    /// (terminal) or [`Self::tenant_rollback`] (dispatch failed).
    fn tenant_admit(&self, tenant: &str) -> Result<(), RouteError> {
        let policy = match &self.cfg.tenancy {
            Some(p) => p,
            None => return Ok(()),
        };
        let mut tenants = self.tenants.lock().expect("tenant table poisoned");
        let now = Instant::now();
        let state = tenants.entry(tenant.to_string()).or_insert(TenantState {
            in_flight: 0,
            bucket: policy.bucket_capacity,
            last_refill: now,
        });
        let dt = now.duration_since(state.last_refill).as_secs_f64();
        state.bucket = (state.bucket + dt * policy.refill_per_sec).min(policy.bucket_capacity);
        state.last_refill = now;
        if state.in_flight >= policy.max_in_flight {
            return Err(RouteError::TenantSaturated {
                tenant: tenant.to_string(),
            });
        }
        if state.bucket < 1.0 {
            return Err(RouteError::RateLimited {
                tenant: tenant.to_string(),
            });
        }
        state.bucket -= 1.0;
        state.in_flight += 1;
        Ok(())
    }

    fn tenant_release(&self, tenant: &str) {
        let mut tenants = self.tenants.lock().expect("tenant table poisoned");
        if let Some(state) = tenants.get_mut(tenant) {
            state.in_flight = state.in_flight.saturating_sub(1);
        }
    }

    /// Undo a reservation whose dispatch never happened: refund the
    /// in-flight slot *and* the bucket token.
    fn tenant_rollback(&self, tenant: &str) {
        let cap = match &self.cfg.tenancy {
            Some(p) => p.bucket_capacity,
            None => return,
        };
        let mut tenants = self.tenants.lock().expect("tenant table poisoned");
        if let Some(state) = tenants.get_mut(tenant) {
            state.in_flight = state.in_flight.saturating_sub(1);
            state.bucket = (state.bucket + 1.0).min(cap);
        }
    }

    /// Degrade-ladder admission: at `RejectLow` and above the router
    /// refuses `Priority::Low` work outright; at `ChatOnly` only
    /// high-priority requests and requests whose prompt extends a known
    /// session prefix (an affinity hit — the signature of an ongoing chat
    /// turn in this stack) are admitted. One relaxed load when the ladder
    /// is at full service.
    fn shed_check(&self, request: &Request) -> Result<(), RouteError> {
        let level = self.degrade_level.load(Ordering::Relaxed);
        if level < DegradeLevel::RejectLow as u8 {
            return Ok(());
        }
        let refuse = match request.priority_class() {
            Priority::Low => true,
            Priority::High => false,
            Priority::Normal => {
                level >= DegradeLevel::ChatOnly as u8
                    && self.affinity_probe(request.prompt()).is_none()
            }
        };
        if refuse {
            self.shed.fetch_add(1, Ordering::Relaxed);
            return Err(RouteError::Shed { level });
        }
        Ok(())
    }

    fn route(
        self: &Arc<Self>,
        tenant: Option<&str>,
        request: Request,
        blocking: bool,
    ) -> Result<(RouteId, ClusterStream), RouteError> {
        self.shed_check(&request)?;
        if let Some(t) = tenant {
            self.tenant_admit(t)?;
        }
        let placed = match self.dispatch(&request, blocking) {
            Ok(p) => p,
            Err(e) => {
                if let Some(t) = tenant {
                    self.tenant_rollback(t);
                }
                return Err(e);
            }
        };
        let id = RouteId(self.next_route.fetch_add(1, Ordering::Relaxed));
        let hedge_deadline = self.cfg.hedge_after.map(|d| Instant::now() + d);
        {
            let mut routes = self.routes.lock().expect("route table poisoned");
            routes.insert(
                id.0,
                RouteEntry {
                    replica: placed.replica,
                    engine_id: placed.engine_id,
                    request,
                    tenant: tenant.map(String::from),
                },
            );
        }
        let stream = ClusterStream {
            inner: Arc::clone(self),
            id,
            replica: placed.replica,
            engine_id: placed.engine_id,
            stream: placed.stream,
            hedge: None,
            next_index: 0,
            saw_first: false,
            hedge_deadline,
            done: false,
        };
        Ok((id, stream))
    }

    fn handle_for(&self, replica: usize) -> Option<EngineHandle> {
        let slots = self.slots.lock().expect("slots poisoned");
        slots.get(replica).map(|s| s.handle.clone())
    }
}

// ---------------------------------------------------------------------------
// RouterHandle
// ---------------------------------------------------------------------------

/// Cloneable front door to the fleet: the [`EngineHandle`] surface
/// (submit / try_submit / cancel / stats) routed across replicas.
#[derive(Clone)]
pub struct RouterHandle {
    inner: Arc<RouterInner>,
}

impl RouterHandle {
    /// Route and submit a request, blocking while the chosen replica's
    /// admission queue is full. Returns the cluster-level [`RouteId`] and
    /// the token stream.
    pub fn submit(&self, request: Request) -> Result<(RouteId, ClusterStream), RouteError> {
        self.inner.route(None, request, true)
    }

    /// Non-blocking [`RouterHandle::submit`]: walks replicas in preference
    /// order and returns [`RouteError::Saturated`] if every active replica
    /// is at capacity.
    pub fn try_submit(&self, request: Request) -> Result<(RouteId, ClusterStream), RouteError> {
        self.inner.route(None, request, false)
    }

    /// [`RouterHandle::submit`] under a tenant's fairness policy.
    pub fn submit_for(
        &self,
        tenant: &str,
        request: Request,
    ) -> Result<(RouteId, ClusterStream), RouteError> {
        self.inner.route(Some(tenant), request, true)
    }

    /// [`RouterHandle::try_submit`] under a tenant's fairness policy.
    pub fn try_submit_for(
        &self,
        tenant: &str,
        request: Request,
    ) -> Result<(RouteId, ClusterStream), RouteError> {
        self.inner.route(Some(tenant), request, false)
    }

    /// Cancel a routed request. Idempotent like
    /// [`EngineHandle::cancel`]: once the route has reached a terminal
    /// event (or was never known), this is a no-op reporting
    /// [`CancelOutcome::AlreadyFinished`].
    pub fn cancel(&self, id: RouteId) -> CancelOutcome {
        // The target engine can change under us (hedge win, failover), and
        // a cancel against the stale engine reports AlreadyFinished. Retry
        // against the refreshed target a bounded number of times.
        for _ in 0..3 {
            let target = {
                let routes = self.inner.routes.lock().expect("route table poisoned");
                routes.get(&id.0).map(|e| (e.replica, e.engine_id))
            };
            let (replica, engine_id) = match target {
                Some(t) => t,
                None => return CancelOutcome::AlreadyFinished,
            };
            if let Some(handle) = self.inner.handle_for(replica) {
                if handle.cancel(engine_id) == CancelOutcome::Cancelled {
                    return CancelOutcome::Cancelled;
                }
            }
            let moved = {
                let routes = self.inner.routes.lock().expect("route table poisoned");
                routes.get(&id.0).map(|e| (e.replica, e.engine_id)) != Some((replica, engine_id))
            };
            if !moved {
                return CancelOutcome::AlreadyFinished;
            }
        }
        CancelOutcome::AlreadyFinished
    }

    /// Routed requests that have not yet reached a terminal event.
    pub fn in_flight(&self) -> usize {
        self.inner
            .routes
            .lock()
            .expect("route table poisoned")
            .len()
    }

    /// Per-replica engine snapshots plus router counters.
    pub fn stats(&self) -> ClusterStats {
        let replicas = {
            let slots = self.inner.slots.lock().expect("slots poisoned");
            slots.iter().map(|s| (s.state, s.handle.stats())).collect()
        };
        ClusterStats {
            replicas,
            routed: self.inner.routed.load(Ordering::Relaxed),
            affinity_hits: self.inner.affinity_hits.load(Ordering::Relaxed),
            spills: self.inner.spills.load(Ordering::Relaxed),
            hedges: self.inner.hedges.load(Ordering::Relaxed),
            rerouted: self.inner.rerouted.load(Ordering::Relaxed),
            shed: self.inner.shed.load(Ordering::Relaxed),
            degrade_level: self.inner.degrade_level.load(Ordering::Relaxed),
            degrade_events: self
                .inner
                .degrade_events
                .lock()
                .expect("degrade events poisoned")
                .clone(),
        }
    }

    /// Open (`true`) or close (`false`) one replica's circuit-breaker
    /// dispatch gate. A closed gate keeps the replica out of the candidate
    /// list while its engine stays alive — the [`Supervisor`]'s lever for
    /// shedding load from a replica it suspects is unhealthy. If every
    /// active replica ends up gated, dispatch falls back to ignoring the
    /// gates: the breaker degrades routing, it never causes a total
    /// outage. Out-of-range `replica` is a no-op.
    pub fn set_dispatch_gate(&self, replica: usize, open: bool) {
        let mut slots = self.inner.slots.lock().expect("slots poisoned");
        if let Some(slot) = slots.get_mut(replica) {
            slot.gate_open = open;
        }
    }

    /// Whether one replica's dispatch gate is open (`true` for unknown
    /// slots, matching the default).
    pub fn dispatch_gate(&self, replica: usize) -> bool {
        let slots = self.inner.slots.lock().expect("slots poisoned");
        slots.get(replica).map(|s| s.gate_open).unwrap_or(true)
    }

    /// Move the degrade ladder to `level` as of virtual step `step`,
    /// recording a typed [`DegradeEvent`] when the level actually changes.
    /// Effects per level are cumulative (each includes everything below):
    ///
    /// 1. [`DegradeLevel::NoHedging`] — stop arming hedged duplicates.
    /// 2. [`DegradeLevel::ShrinkDraft`] — pin every replica's speculative
    ///    draft budget to 1 (restored to
    ///    [`ClusterConfig::draft_k_full`] on recovery).
    /// 3. [`DegradeLevel::RejectLow`] — refuse `Priority::Low` at
    ///    admission with [`RouteError::Shed`].
    /// 4. [`DegradeLevel::ChatOnly`] — additionally refuse normal-priority
    ///    requests with no session-prefix affinity hit.
    pub fn set_degrade_level(&self, level: DegradeLevel, step: u64) {
        let to = level as u8;
        let from = self.inner.degrade_level.swap(to, Ordering::Relaxed);
        if from == to {
            return;
        }
        let shrink = DegradeLevel::ShrinkDraft as u8;
        if from < shrink && to >= shrink {
            let slots = self.inner.slots.lock().expect("slots poisoned");
            for slot in slots.iter() {
                slot.handle.set_draft_k(1);
            }
        } else if from >= shrink && to < shrink {
            let slots = self.inner.slots.lock().expect("slots poisoned");
            for slot in slots.iter() {
                slot.handle.set_draft_k(self.inner.cfg.draft_k_full);
            }
        }
        self.inner
            .degrade_events
            .lock()
            .expect("degrade events poisoned")
            .push(DegradeEvent { step, from, to });
    }

    /// The current degrade-ladder level.
    pub fn degrade_level(&self) -> u8 {
        self.inner.degrade_level.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// ClusterStream
// ---------------------------------------------------------------------------

/// A routed token stream with the [`TokenStream`] surface, plus the
/// router's delivery guarantees layered on top:
///
/// * **Exact-once** — a high-water mark on token indices suppresses any
///   replay from hedged duplicates or failover re-submissions, so every
///   `Token { index, .. }` is delivered at most once and in order.
/// * **Failover** — if the producing replica dies mid-stream, the request
///   is transparently re-submitted (from its original prompt) to a
///   survivor; deterministic per-request-seeded sampling makes the
///   re-generated tokens bit-identical, and delivery resumes at the
///   high-water mark.
/// * **Hedging** — before the first token, a straggling request may race a
///   duplicate on a second replica; the first responder wins and the loser
///   is cancelled synchronously before any of its events are forwarded.
///
/// Dropping the stream cancels whatever is still running, exactly like
/// dropping a [`TokenStream`].
pub struct ClusterStream {
    inner: Arc<RouterInner>,
    id: RouteId,
    replica: usize,
    engine_id: RequestId,
    stream: TokenStream,
    hedge: Option<Placement>,
    next_index: usize,
    saw_first: bool,
    hedge_deadline: Option<Instant>,
    done: bool,
}

impl std::fmt::Debug for ClusterStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterStream")
            .field("id", &self.id)
            .field("replica", &self.replica)
            .field("engine_id", &self.engine_id)
            .field("next_index", &self.next_index)
            .field("hedged", &self.hedge.is_some())
            .field("done", &self.done)
            .finish()
    }
}

impl ClusterStream {
    /// The cluster-level route id (matches the rewritten
    /// [`ServeResponse::id`]).
    pub fn id(&self) -> RouteId {
        self.id
    }

    /// Next token event, blocking until one is available. `None` after the
    /// terminal event, or if the whole fleet died under the request.
    pub fn next_event(&mut self) -> Option<TokenEvent> {
        loop {
            if self.done {
                return None;
            }
            if self.hedge.is_some() {
                if let Some(ev) = self.race_step() {
                    if let Some(out) = self.admit(ev) {
                        return Some(out);
                    }
                }
                continue;
            }
            let ev = match self.hedge_deadline {
                Some(deadline) if !self.saw_first => {
                    let now = Instant::now();
                    if now >= deadline {
                        self.hedge_deadline = None;
                        self.arm_hedge();
                        continue;
                    }
                    match self.stream.poll_event(deadline - now) {
                        StreamPoll::Event(ev) => Some(ev),
                        StreamPoll::TimedOut => {
                            self.hedge_deadline = None;
                            self.arm_hedge();
                            continue;
                        }
                        StreamPoll::Ended => None,
                    }
                }
                _ => self.stream.next_event(),
            };
            match ev {
                Some(ev) => {
                    if let Some(out) = self.admit(ev) {
                        return Some(out);
                    }
                }
                None => {
                    // Disconnect without a terminal: the producing engine
                    // died. Re-place ourselves on a survivor.
                    if !self.redispatch_self() {
                        self.done = true;
                        self.finish_route();
                        return None;
                    }
                }
            }
        }
    }

    /// Block until the terminal event and return the final response.
    /// `None` if the stream ended without one (fleet lost).
    pub fn wait(&mut self) -> Option<ServeResponse> {
        while let Some(ev) = self.next_event() {
            if let TokenEvent::Finished(resp) = ev {
                return Some(resp);
            }
        }
        None
    }

    /// Apply the exact-once filter and terminal bookkeeping to a raw
    /// engine event. `None` means the event was suppressed (failover
    /// replay below the high-water mark).
    fn admit(&mut self, ev: TokenEvent) -> Option<TokenEvent> {
        match ev {
            TokenEvent::Token { index, token } => {
                if index < self.next_index {
                    return None;
                }
                self.next_index = index + 1;
                self.saw_first = true;
                Some(TokenEvent::Token { index, token })
            }
            TokenEvent::Finished(mut resp) => {
                self.cancel_hedge();
                resp.id = self.id.raw();
                self.done = true;
                self.finish_route();
                Some(TokenEvent::Finished(resp))
            }
        }
    }

    /// One round of the primary-vs-hedge race: alternate short polls until
    /// either side produces an event or dies. `Some(ev)` hands the winning
    /// event up (the loser is already cancelled); `None` means "state
    /// changed, poll again".
    fn race_step(&mut self) -> Option<TokenEvent> {
        match self.stream.poll_event(HEDGE_SLICE) {
            StreamPoll::Event(ev) => {
                self.cancel_hedge();
                return Some(ev);
            }
            StreamPoll::Ended => {
                // Primary died mid-race: the hedge becomes the primary.
                let p = self.hedge.take().expect("race requires a hedge");
                self.install(p);
                return None;
            }
            StreamPoll::TimedOut => {}
        }
        let hedge = self.hedge.as_mut().expect("race requires a hedge");
        match hedge.stream.poll_event(HEDGE_SLICE) {
            StreamPoll::Event(ev) => {
                let p = self.hedge.take().expect("hedge present");
                let loser_replica = self.replica;
                let loser_id = self.engine_id;
                self.install(p);
                // Synchronous cancel: after this returns the loser can
                // never emit another token, and nothing it already emitted
                // was forwarded.
                self.cancel_on(loser_replica, loser_id);
                Some(ev)
            }
            StreamPoll::Ended => {
                self.hedge = None;
                None
            }
            StreamPoll::TimedOut => None,
        }
    }

    /// Duplicate the request onto the best replica other than the current
    /// one. Failure to place a hedge is silent — the primary still runs.
    /// Suppressed entirely while the degrade ladder is at
    /// [`DegradeLevel::NoHedging`] or above: under pressure, duplicate
    /// work is the first thing to go.
    fn arm_hedge(&mut self) {
        if self.inner.degrade_level.load(Ordering::Relaxed) >= DegradeLevel::NoHedging as u8 {
            return;
        }
        let request = {
            let routes = self.inner.routes.lock().expect("route table poisoned");
            match routes.get(&self.id.0) {
                Some(e) => e.request.clone(),
                None => return,
            }
        };
        let picks = match self
            .inner
            .candidates(request.prompt(), Some(self.replica), false)
        {
            Ok(p) => p,
            Err(_) => return,
        };
        for pick in &picks {
            if let Ok((engine_id, stream)) = pick.handle.try_submit(request.clone()) {
                self.inner.hedges.fetch_add(1, Ordering::Relaxed);
                self.hedge = Some(Placement {
                    replica: pick.replica,
                    engine_id,
                    stream,
                });
                return;
            }
        }
    }

    /// The producing engine died without a terminal event: re-submit the
    /// original request to a survivor and resume at the high-water mark.
    fn redispatch_self(&mut self) -> bool {
        if let Some(p) = self.hedge.take() {
            // The hedge already has a live copy running — promote it.
            self.install(p);
            return true;
        }
        if self.inner.shutdown.load(Ordering::Relaxed) {
            return false;
        }
        let request = {
            let routes = self.inner.routes.lock().expect("route table poisoned");
            match routes.get(&self.id.0) {
                Some(e) => e.request.clone(),
                None => return false,
            }
        };
        for _ in 0..DISPATCH_ROUNDS {
            let picks = match self
                .inner
                .candidates(request.prompt(), Some(self.replica), true)
            {
                Ok(p) => p,
                Err(_) => return false,
            };
            let pick = &picks[0];
            match pick.handle.submit(request.clone()) {
                Ok((engine_id, stream)) => {
                    self.inner.rerouted.fetch_add(1, Ordering::Relaxed);
                    self.inner.record_affinity(request.prompt(), pick.replica);
                    self.install(Placement {
                        replica: pick.replica,
                        engine_id,
                        stream,
                    });
                    return true;
                }
                Err(_) => self.inner.note_unavailable(pick.replica),
            }
        }
        false
    }

    /// Swap the producing engine and update the route entry so cancel and
    /// stats target the right engine.
    fn install(&mut self, p: Placement) {
        {
            let mut routes = self.inner.routes.lock().expect("route table poisoned");
            if let Some(e) = routes.get_mut(&self.id.0) {
                e.replica = p.replica;
                e.engine_id = p.engine_id;
            }
        }
        self.replica = p.replica;
        self.engine_id = p.engine_id;
        self.stream = p.stream;
    }

    fn cancel_on(&self, replica: usize, engine_id: RequestId) {
        if let Some(handle) = self.inner.handle_for(replica) {
            let _ = handle.cancel(engine_id);
        }
    }

    fn cancel_hedge(&mut self) {
        if let Some(p) = self.hedge.take() {
            let replica = p.replica;
            let engine_id = p.engine_id;
            drop(p.stream);
            self.cancel_on(replica, engine_id);
        }
    }

    /// Remove the route entry and release the tenant slot. Idempotent.
    fn finish_route(&mut self) {
        let entry = {
            let mut routes = self.inner.routes.lock().expect("route table poisoned");
            routes.remove(&self.id.0)
        };
        if let Some(e) = entry {
            if let Some(t) = e.tenant {
                self.inner.tenant_release(&t);
            }
        }
    }
}

impl Drop for ClusterStream {
    fn drop(&mut self) {
        // Dropping `self.stream` auto-cancels the live copy engine-side;
        // the hedge needs the same treatment, and the route entry must go.
        self.cancel_hedge();
        self.finish_route();
    }
}

// ---------------------------------------------------------------------------
// Cluster
// ---------------------------------------------------------------------------

/// A fleet of [`ServeEngine`] replicas behind one [`RouterHandle`].
///
/// Each replica must own its *own* KV block pool — pass freshly configured
/// models (e.g. `model.clone().with_kv_config(..)`), not clones sharing a
/// pool. [`Cluster::new`] panics if two replicas share a pool, because
/// affinity accounting and the kill-time leak check would silently lie.
pub struct Cluster {
    engines: Vec<Option<ServeEngine>>,
    pools: Vec<Arc<KvBlockPool>>,
    inner: Arc<RouterInner>,
}

impl Cluster {
    /// Spin up one [`ServeEngine`] per model, all sharing `config.engine`.
    pub fn new<M: ServeModel + 'static>(models: Vec<M>, config: ClusterConfig) -> Self {
        assert!(!models.is_empty(), "a cluster needs at least one replica");
        let block_tokens = models[0].kv_pool().block_tokens();
        let mut pools: Vec<Arc<KvBlockPool>> = Vec::with_capacity(models.len());
        for model in &models {
            let pool = Arc::clone(model.kv_pool());
            assert!(
                !pools.iter().any(|p| Arc::ptr_eq(p, &pool)),
                "replicas must not share a KV pool; configure each model \
                 with its own via with_kv_config"
            );
            pools.push(pool);
        }
        let mut engines = Vec::with_capacity(models.len());
        let mut slots = Vec::with_capacity(models.len());
        for model in models {
            let engine = ServeEngine::new(model, config.engine);
            slots.push(Slot {
                handle: engine.handle(),
                state: ReplicaState::Active,
                gate_open: true,
            });
            engines.push(Some(engine));
        }
        let inner = Arc::new(RouterInner {
            cfg: config,
            block_tokens,
            slots: Mutex::new(slots),
            affinity: Mutex::new(AffinityMap {
                map: HashMap::new(),
                order: VecDeque::new(),
                cap: AFFINITY_CAPACITY,
            }),
            tenants: Mutex::new(HashMap::new()),
            routes: Mutex::new(HashMap::new()),
            shutdown: AtomicBool::new(false),
            next_route: AtomicU64::new(0),
            routed: AtomicU64::new(0),
            affinity_hits: AtomicU64::new(0),
            spills: AtomicU64::new(0),
            hedges: AtomicU64::new(0),
            rerouted: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            degrade_level: AtomicU8::new(0),
            degrade_events: Mutex::new(Vec::new()),
        });
        Cluster {
            engines,
            pools,
            inner,
        }
    }

    /// A cloneable router handle to the fleet.
    pub fn handle(&self) -> RouterHandle {
        RouterHandle {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Number of replica slots (live or not).
    pub fn replicas(&self) -> usize {
        self.engines.len()
    }

    /// Lifecycle state of one replica slot.
    pub fn replica_state(&self, replica: usize) -> ReplicaState {
        self.inner.slots.lock().expect("slots poisoned")[replica].state
    }

    /// The KV block pool behind one replica — the ledger a failure test
    /// audits for leaks after a kill.
    pub fn pool(&self, replica: usize) -> Arc<KvBlockPool> {
        Arc::clone(&self.pools[replica])
    }

    /// The engine handle behind one replica slot, for out-of-band control
    /// (fault injection, stall/stream-drop hooks). The handle outlives a
    /// kill — operations on a dead engine are harmless no-ops.
    pub fn engine_handle(&self, replica: usize) -> EngineHandle {
        self.inner.slots.lock().expect("slots poisoned")[replica]
            .handle
            .clone()
    }

    /// Fleet-wide high-water mark of physical resident KV bytes: the sum
    /// over replicas of each pool's peak of owned plus distinct shared
    /// blocks. This is the capacity number placement policy moves —
    /// prefix-affinity routing dedups a session's history into one
    /// replica's radix index instead of replicating it across the fleet,
    /// so it shows up here even though per-request peaks are unchanged.
    pub fn resident_peak_bytes(&self) -> usize {
        self.pools.iter().map(|p| p.peak_bytes()).sum()
    }

    /// Drain one replica: the router stops dispatching to it and its
    /// engine refuses new work, while everything in flight runs to its
    /// terminal event.
    ///
    /// Idempotent with a typed [`DrainOutcome`] (mirroring
    /// [`CancelOutcome`]): exactly one call observes
    /// [`DrainOutcome::Draining`]; repeats report
    /// [`DrainOutcome::AlreadyDraining`], and draining a dead slot is a
    /// [`DrainOutcome::Dead`] no-op.
    pub fn drain(&self, replica: usize) -> DrainOutcome {
        let handle = {
            let mut slots = self.inner.slots.lock().expect("slots poisoned");
            match slots[replica].state {
                ReplicaState::Dead => return DrainOutcome::Dead,
                ReplicaState::Draining => return DrainOutcome::AlreadyDraining,
                ReplicaState::Active => {}
            }
            slots[replica].state = ReplicaState::Draining;
            slots[replica].handle.clone()
        };
        handle.drain();
        DrainOutcome::Draining
    }

    /// Kill one replica abruptly: its worker exits within a step and every
    /// in-flight stream it served disconnects. Each such request is
    /// re-submitted to a survivor from its original prompt the next time
    /// its [`ClusterStream`] is polled; deterministic sampling makes the
    /// re-generated tokens bit-identical, and the stream's high-water mark
    /// suppresses re-delivery of anything already seen.
    pub fn kill(&mut self, replica: usize) {
        {
            let mut slots = self.inner.slots.lock().expect("slots poisoned");
            slots[replica].state = ReplicaState::Dead;
        }
        if let Some(engine) = self.engines[replica].take() {
            engine.kill();
        }
    }

    /// Bring a dead (or drained) slot back with a fresh model. The slot
    /// re-enters dispatch immediately; any prior engine is shut down.
    pub fn respawn<M: ServeModel + 'static>(&mut self, replica: usize, model: M) {
        if let Some(engine) = self.engines[replica].take() {
            engine.shutdown();
        }
        self.pools[replica] = Arc::clone(model.kv_pool());
        let engine = ServeEngine::new(model, self.inner.cfg.engine);
        {
            let mut slots = self.inner.slots.lock().expect("slots poisoned");
            slots[replica] = Slot {
                handle: engine.handle(),
                state: ReplicaState::Active,
                gate_open: true,
            };
        }
        self.engines[replica] = Some(engine);
    }

    /// Stop dispatch fleet-wide, drain every replica to its terminal
    /// events, and join the workers.
    pub fn shutdown(mut self) {
        self.inner.shutdown.store(true, Ordering::Relaxed);
        {
            let mut slots = self.inner.slots.lock().expect("slots poisoned");
            for slot in slots.iter_mut() {
                if slot.state == ReplicaState::Active {
                    slot.state = ReplicaState::Draining;
                }
            }
        }
        for engine in self.engines.iter_mut() {
            if let Some(engine) = engine.take() {
                engine.shutdown();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edkm_core::serve::{FinishReason, SamplingConfig};
    use edkm_core::{CompressSpec, KvBlockConfig, PalettizedModel};
    use edkm_nn::{LlamaConfig, LlamaModel};
    use edkm_tensor::{runtime, DType, Device};

    const KV: KvBlockConfig = KvBlockConfig {
        block_tokens: 4,
        max_blocks: 0,
    };

    fn base_model() -> PalettizedModel {
        runtime::reset();
        let cfg = LlamaConfig {
            vocab: 64,
            d_model: 32,
            n_heads: 2,
            n_layers: 2,
            d_ff: 64,
            max_seq: 48,
        };
        let dense = LlamaModel::new(cfg, DType::Bf16, Device::Cpu, 0);
        let mut spec = CompressSpec::with_bits(3);
        spec.dkm.iters = 2;
        PalettizedModel::from_dense(&dense, &spec).expect("servable export")
    }

    fn fleet(model: &PalettizedModel, n: usize) -> Vec<PalettizedModel> {
        (0..n)
            .map(|_| model.clone().with_kv_config(KV).with_prefix_cache(true))
            .collect()
    }

    /// Replicas without the engine-level prefix cache: the radix index
    /// retains blocks past request retirement (counted by
    /// `blocks_in_use`), which would mask the zero-leak assertion after a
    /// kill.
    fn fleet_plain(model: &PalettizedModel, n: usize) -> Vec<PalettizedModel> {
        (0..n).map(|_| model.clone().with_kv_config(KV)).collect()
    }

    fn req(prompt: Vec<usize>, seed: u64, max_new: usize) -> Request {
        Request::new(prompt)
            .max_new_tokens(max_new)
            .sampling(SamplingConfig {
                temperature: 0.8,
                top_k: 8,
                seed,
            })
    }

    fn collect(stream: &mut ClusterStream) -> (Vec<usize>, ServeResponse) {
        let mut toks = Vec::new();
        let mut last = 0usize;
        let mut first = true;
        loop {
            match stream.next_event().expect("stream ended without terminal") {
                TokenEvent::Token { index, token } => {
                    if !first {
                        assert!(index > last, "token indices must strictly increase");
                    }
                    first = false;
                    last = index;
                    toks.push(token);
                }
                TokenEvent::Finished(resp) => return (toks, resp),
            }
        }
    }

    #[test]
    fn single_replica_cluster_matches_bare_engine_bit_for_bit() {
        let model = base_model();
        let prompts: Vec<Vec<usize>> = (0..4).map(|i| vec![1 + i, 2, 3, 4 + i]).collect();

        // Bare engine reference.
        let engine = ServeEngine::new(
            model.clone().with_kv_config(KV).with_prefix_cache(true),
            EngineConfig::default(),
        );
        let handle = engine.handle();
        let mut reference = Vec::new();
        for (i, p) in prompts.iter().enumerate() {
            let (_, mut s) = handle.submit(req(p.clone(), 40 + i as u64, 6)).unwrap();
            reference.push(s.wait().unwrap().tokens);
        }
        engine.shutdown();

        let cluster = Cluster::new(fleet(&model, 1), ClusterConfig::default());
        let router = cluster.handle();
        for (i, p) in prompts.iter().enumerate() {
            let (_, mut s) = router.submit(req(p.clone(), 40 + i as u64, 6)).unwrap();
            let (streamed, resp) = collect(&mut s);
            assert_eq!(
                resp.tokens, reference[i],
                "placement must not change tokens"
            );
            let gen_tail = &resp.tokens[resp.tokens.len() - resp.generated..];
            assert_eq!(streamed, gen_tail, "streamed tokens match the response");
        }
        cluster.shutdown();
    }

    #[test]
    fn chat_turns_stick_to_their_prefix_replica() {
        let model = base_model();
        let cluster = Cluster::new(fleet(&model, 3), ClusterConfig::default());
        let router = cluster.handle();

        // Turn 1 of a session lands somewhere.
        let turn1: Vec<usize> = vec![9, 8, 7, 6, 5];
        let (_, mut s) = router.submit(req(turn1.clone(), 7, 4)).unwrap();
        let resp1 = s.wait().unwrap();

        // Turn 2 extends turn 1's prompt (history replay, as gen_chat does).
        let mut turn2 = turn1.clone();
        turn2.extend(resp1.tokens[turn1.len()..].iter().copied());
        turn2.extend([11, 12, 13]);
        let (_, mut s2) = router.submit(req(turn2.clone(), 8, 4)).unwrap();
        s2.wait().unwrap();

        let stats = router.stats();
        assert_eq!(stats.routed, 2);
        assert_eq!(
            stats.affinity_hits, 1,
            "the follow-up turn must rediscover its session replica"
        );
        assert!(stats.affinity_hit_rate() > 0.0);
        cluster.shutdown();
    }

    #[test]
    fn tenant_policy_rejects_with_typed_errors() {
        let model = base_model();
        let cluster = Cluster::new(
            fleet(&model, 1),
            ClusterConfig {
                tenancy: Some(TenantPolicy {
                    max_in_flight: 1,
                    bucket_capacity: 2.0,
                    refill_per_sec: 0.0,
                }),
                ..ClusterConfig::default()
            },
        );
        let router = cluster.handle();

        let (_, s1) = router.submit_for("acme", req(vec![1, 2, 3], 1, 8)).unwrap();
        // Second concurrent request: in-flight cap.
        match router.submit_for("acme", req(vec![4, 5, 6], 2, 4)) {
            Err(RouteError::TenantSaturated { tenant }) => assert_eq!(tenant, "acme"),
            other => panic!("expected TenantSaturated, got {other:?}"),
        }
        // Another tenant is unaffected by acme's cap.
        let (_, mut s3) = router.submit_for("beta", req(vec![7, 8, 9], 3, 2)).unwrap();
        s3.wait().unwrap();

        drop(s1); // release acme's slot
                  // Bucket: capacity 2, one token spent, zero refill — one more
                  // admission succeeds, the next is rate-limited.
        let (_, mut s4) = router.submit_for("acme", req(vec![1, 2, 4], 4, 2)).unwrap();
        s4.wait().unwrap();
        match router.submit_for("acme", req(vec![1, 2, 5], 5, 2)) {
            Err(RouteError::RateLimited { tenant }) => assert_eq!(tenant, "acme"),
            other => panic!("expected RateLimited, got {other:?}"),
        }
        cluster.shutdown();
    }

    #[test]
    fn router_cancel_is_idempotent_and_typed() {
        let model = base_model();
        let cluster = Cluster::new(fleet(&model, 2), ClusterConfig::default());
        let router = cluster.handle();

        let (id, mut s) = router.submit(req(vec![1, 2, 3], 11, 32)).unwrap();
        let first = router.cancel(id);
        assert_eq!(first, CancelOutcome::Cancelled);
        let resp = s.wait().expect("cancel still delivers a terminal");
        assert_eq!(resp.finish, FinishReason::Cancelled);
        // Every later cancel — same id, terminal already delivered — is a
        // typed no-op.
        assert_eq!(router.cancel(id), CancelOutcome::AlreadyFinished);
        assert_eq!(router.cancel(id), CancelOutcome::AlreadyFinished);
        cluster.shutdown();
    }

    #[test]
    fn hedging_delivers_every_token_exactly_once() {
        let model = base_model();
        // Reference tokens from an un-hedged run.
        let reference = {
            let cluster = Cluster::new(fleet(&model, 1), ClusterConfig::default());
            let (_, mut s) = cluster
                .handle()
                .submit(req(vec![3, 1, 4, 1], 21, 8))
                .unwrap();
            let resp = s.wait().unwrap();
            cluster.shutdown();
            resp.tokens
        };
        // Hedge immediately: the duplicate races the primary from step one.
        let cluster = Cluster::new(
            fleet(&model, 2),
            ClusterConfig {
                hedge_after: Some(Duration::from_millis(0)),
                ..ClusterConfig::default()
            },
        );
        let router = cluster.handle();
        let (_, mut s) = router.submit(req(vec![3, 1, 4, 1], 21, 8)).unwrap();
        let (streamed, resp) = collect(&mut s); // asserts strictly increasing indices
        assert_eq!(resp.tokens, reference, "hedging must not change tokens");
        assert_eq!(streamed.len(), resp.generated, "no duplicate deliveries");
        assert!(router.stats().hedges >= 1, "the hedge must have been armed");
        cluster.shutdown();
    }

    #[test]
    fn drained_replica_gets_no_new_work_but_finishes_in_flight() {
        let model = base_model();
        let mut requests = Vec::new();
        let cluster = Cluster::new(fleet(&model, 2), ClusterConfig::default());
        let router = cluster.handle();

        let (_, s0) = router.submit(req(vec![2, 7, 1, 8], 31, 16)).unwrap();
        let victim = s0.replica;
        cluster.drain(victim);
        assert_eq!(cluster.replica_state(victim), ReplicaState::Draining);

        // New work only lands on the survivor.
        for i in 0..4 {
            let (_, s) = router
                .submit(req(vec![5 + i, 6, 7], 50 + i as u64, 2))
                .unwrap();
            assert_ne!(s.replica, victim, "drained replica must get no dispatch");
            requests.push(s);
        }
        for mut s in requests {
            s.wait().unwrap();
        }
        // The in-flight request on the drained replica still finishes.
        let mut s0 = s0;
        let resp = s0.wait().expect("in-flight work survives a drain");
        assert_eq!(resp.generated, 16);
        cluster.shutdown();
    }

    #[test]
    fn drain_is_idempotent_with_typed_outcomes() {
        let model = base_model();
        let mut cluster = Cluster::new(fleet(&model, 2), ClusterConfig::default());
        // Exactly one call observes the transition; repeats are typed
        // no-ops, mirroring `CancelOutcome`.
        assert_eq!(cluster.drain(0), DrainOutcome::Draining);
        assert!(DrainOutcome::Draining.started_drain());
        assert_eq!(cluster.drain(0), DrainOutcome::AlreadyDraining);
        assert_eq!(cluster.drain(0), DrainOutcome::AlreadyDraining);
        assert!(!DrainOutcome::AlreadyDraining.started_drain());
        assert_eq!(cluster.replica_state(0), ReplicaState::Draining);
        // Draining a dead slot reports Dead and changes nothing.
        cluster.kill(1);
        assert_eq!(cluster.drain(1), DrainOutcome::Dead);
        assert_eq!(cluster.replica_state(1), ReplicaState::Dead);
        cluster.shutdown();
    }

    #[test]
    fn degrade_ladder_sheds_by_priority_and_recovers() {
        let model = base_model();
        let cluster = Cluster::new(fleet(&model, 2), ClusterConfig::default());
        let router = cluster.handle();
        router.set_degrade_level(DegradeLevel::RejectLow, 10);

        // Low priority is refused with a typed error; normal still flows.
        let low = req(vec![9, 8, 7], 70, 2).priority(Priority::Low);
        match router.submit(low) {
            Err(RouteError::Shed { level }) => {
                assert_eq!(level, DegradeLevel::RejectLow as u8)
            }
            other => panic!("Low must be shed at RejectLow, got {other:?}"),
        }
        let (_, mut ok) = router
            .submit(req(vec![1, 2, 3], 71, 2))
            .expect("normal priority survives RejectLow");
        ok.wait().expect("finishes");

        // ChatOnly also refuses cold normal-priority prompts; High flows.
        router.set_degrade_level(DegradeLevel::ChatOnly, 20);
        match router.submit(req(vec![4, 5, 6], 72, 2)) {
            Err(RouteError::Shed { .. }) => {}
            other => panic!("cold normal prompt must be shed at ChatOnly, got {other:?}"),
        }
        let (_, mut hi) = router
            .submit(req(vec![2, 4, 6], 73, 2).priority(Priority::High))
            .expect("High survives ChatOnly");
        hi.wait().expect("finishes");

        // Recovery restores full admission, and stats carry the history.
        router.set_degrade_level(DegradeLevel::Full, 30);
        let (_, mut back) = router
            .submit(req(vec![9, 8, 7], 74, 2).priority(Priority::Low))
            .expect("Low flows again at Full");
        back.wait().expect("finishes");
        let stats = router.stats();
        assert_eq!(stats.shed, 2);
        assert_eq!(stats.degrade_level, DegradeLevel::Full as u8);
        assert_eq!(stats.degrade_events.len(), 3);
        assert!(stats.degrade_events[0].is_escalation());
        assert!(!stats.degrade_events[2].is_escalation());
        cluster.shutdown();
    }

    #[test]
    fn gated_replica_gets_no_dispatch_until_reopened() {
        let model = base_model();
        let cluster = Cluster::new(fleet(&model, 2), ClusterConfig::default());
        let router = cluster.handle();
        router.set_dispatch_gate(0, false);
        assert!(!router.dispatch_gate(0));
        let mut streams = Vec::new();
        for i in 0..4 {
            let (_, s) = router
                .submit(req(vec![3 + i, 1, 4], 80 + i as u64, 2))
                .unwrap();
            assert_eq!(s.replica, 1, "gated replica must take no dispatch");
            streams.push(s);
        }
        // All-gated never means outage: the router falls back to ignoring
        // gates rather than refusing everyone.
        router.set_dispatch_gate(1, false);
        let (_, s) = router.submit(req(vec![7, 7, 7], 90, 2)).unwrap();
        streams.push(s);
        router.set_dispatch_gate(0, true);
        assert!(router.dispatch_gate(0));
        for mut s in streams {
            s.wait().expect("finishes");
        }
        cluster.shutdown();
    }

    #[test]
    fn killed_replica_fails_over_with_bit_identical_tokens_and_no_leak() {
        let model = base_model();
        let prompts: Vec<Vec<usize>> = (0..6).map(|i| vec![1 + i, 3, 5, 7 + i]).collect();

        // Undisturbed reference.
        let reference: Vec<Vec<usize>> = {
            let cluster = Cluster::new(fleet_plain(&model, 1), ClusterConfig::default());
            let router = cluster.handle();
            let out = prompts
                .iter()
                .enumerate()
                .map(|(i, p)| {
                    let (_, mut s) = router.submit(req(p.clone(), 60 + i as u64, 8)).unwrap();
                    s.wait().unwrap().tokens
                })
                .collect();
            cluster.shutdown();
            out
        };

        let mut cluster = Cluster::new(fleet_plain(&model, 2), ClusterConfig::default());
        let router = cluster.handle();
        let mut streams = Vec::new();
        for (i, p) in prompts.iter().enumerate() {
            let (_, s) = router.submit(req(p.clone(), 60 + i as u64, 8)).unwrap();
            streams.push(s);
        }
        // Kill replica 0 while everything is in flight.
        cluster.kill(0);
        assert_eq!(cluster.replica_state(0), ReplicaState::Dead);

        for (i, mut s) in streams.into_iter().enumerate() {
            let (streamed, resp) = collect(&mut s); // strictly increasing indices
            assert_eq!(
                resp.tokens, reference[i],
                "failover must reproduce tokens bit-for-bit"
            );
            assert_eq!(streamed.len(), resp.generated, "exact-once delivery");
            assert_eq!(resp.id, i as u64, "terminal carries the route id");
        }
        assert_eq!(
            cluster.pool(0).blocks_in_use(),
            0,
            "dead replica's ledger must hold zero live blocks"
        );
        cluster.shutdown();
    }

    #[test]
    fn respawned_replica_rejoins_dispatch() {
        let model = base_model();
        let mut cluster = Cluster::new(fleet(&model, 2), ClusterConfig::default());
        let router = cluster.handle();
        cluster.kill(1);
        cluster.respawn(1, model.clone().with_kv_config(KV).with_prefix_cache(true));
        assert_eq!(cluster.replica_state(1), ReplicaState::Active);
        // Saturate nothing; just prove both replicas serve again.
        let mut streams = Vec::new();
        for i in 0..6 {
            let (_, s) = router
                .submit(req(vec![i + 1, 2, 3], 70 + i as u64, 2))
                .unwrap();
            streams.push(s);
        }
        let replicas: std::collections::HashSet<usize> =
            streams.iter().map(|s| s.replica).collect();
        for mut s in streams {
            s.wait().unwrap();
        }
        assert!(replicas.contains(&1), "respawned slot must take dispatch");
        cluster.shutdown();
    }

    #[test]
    fn empty_fleet_errors_are_typed() {
        let model = base_model();
        let mut cluster = Cluster::new(fleet(&model, 1), ClusterConfig::default());
        let router = cluster.handle();
        cluster.kill(0);
        match router.submit(req(vec![1, 2], 80, 2)) {
            Err(RouteError::NoReplicas) => {}
            other => panic!("expected NoReplicas, got {other:?}"),
        }
        cluster.shutdown();
    }
}
