//! Self-healing fleet supervision: per-replica health tracking, a circuit
//! breaker gating dispatch, capped-backoff respawn scheduling, and a
//! graceful-degradation ladder.
//!
//! The [`Supervisor`] is a pure policy machine driven by an external
//! clock: each [`Supervisor::tick`] consumes one fleet
//! [`ClusterStats`] observation and returns the
//! [`SupervisorAction`]s the driver should apply (open/close dispatch
//! gates via [`RouterHandle`](crate::RouterHandle), drain or respawn via
//! [`Cluster`](crate::Cluster), move the degrade ladder). Keeping the
//! decisions separate from their application makes the whole recovery
//! policy unit-testable without a fleet, and lets the chaos-replay
//! harness drive it on the deterministic virtual step clock.
//!
//! **Health model.** A replica is suspected *wedged* when its published
//! [`StatsSnapshot`] is bit-identical across consecutive probes while it
//! still holds queued or active work — a live engine always moves some
//! counter per scheduling step, so a frozen snapshot under load means the
//! worker stopped stepping (the slow-replica fault signature, or a stuck
//! kernel). Dispatch failures reported through
//! [`Supervisor::record_dispatch_outcome`] feed the same breaker.
//!
//! **Breaker.** Closed → Open on sustained staleness or consecutive
//! dispatch failures; Open → HalfOpen after a seeded-jitter exponential
//! backoff (doubling per open, capped); HalfOpen → Closed after the
//! replica demonstrates progress, or back to Open (longer backoff) if it
//! wedges again. The proactive-drain threshold retires a replica that
//! stays wedged well past the breaker horizon — the conditional-handover
//! discipline: move traffic away *before* the hard failure, and recycle
//! the replica once it empties.

use std::time::Duration;

use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::{ClusterStats, ReplicaState};
use edkm_core::engine::StatsSnapshot;

/// Graceful-degradation ladder: each level sheds one more class of work,
/// cheapest first, so the fleet keeps serving its highest-value traffic
/// under sustained pressure. Levels are cumulative.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum DegradeLevel {
    /// Full service.
    Full = 0,
    /// Stop arming hedged duplicates: the first capacity reclaimed is the
    /// capacity spent on redundant work.
    NoHedging = 1,
    /// Pin the speculative draft budget to 1: sheds draft-model compute
    /// without touching a single emitted token (acceptance is exact).
    ShrinkDraft = 2,
    /// Refuse `Priority::Low` requests at admission with
    /// [`RouteError::Shed`](crate::RouteError::Shed).
    RejectLow = 3,
    /// Additionally refuse normal-priority requests with no session-prefix
    /// affinity hit: ongoing chat turns (which extend a prefix the fleet
    /// already holds, and are cheap thanks to the radix cache) and
    /// high-priority work keep flowing; cold new traffic waits.
    ChatOnly = 4,
}

impl DegradeLevel {
    /// The level encoded by `v`, saturating above the top rung.
    pub fn from_u8(v: u8) -> Self {
        match v {
            0 => DegradeLevel::Full,
            1 => DegradeLevel::NoHedging,
            2 => DegradeLevel::ShrinkDraft,
            3 => DegradeLevel::RejectLow,
            _ => DegradeLevel::ChatOnly,
        }
    }

    /// One rung harsher (saturating).
    pub fn escalate(self) -> Self {
        DegradeLevel::from_u8((self as u8).saturating_add(1))
    }

    /// One rung gentler (saturating).
    pub fn recover(self) -> Self {
        DegradeLevel::from_u8((self as u8).saturating_sub(1))
    }
}

impl std::fmt::Display for DegradeLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            DegradeLevel::Full => "full",
            DegradeLevel::NoHedging => "no-hedging",
            DegradeLevel::ShrinkDraft => "shrink-draft",
            DegradeLevel::RejectLow => "reject-low",
            DegradeLevel::ChatOnly => "chat-only",
        };
        write!(f, "{name}")
    }
}

/// One degrade-ladder transition, recorded in
/// [`ClusterStats::degrade_events`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradeEvent {
    /// Virtual step (or supervisor tick) at which the ladder moved.
    pub step: u64,
    /// Level before the transition.
    pub from: u8,
    /// Level after the transition.
    pub to: u8,
}

impl DegradeEvent {
    /// `true` when the ladder moved to a harsher level.
    pub fn is_escalation(&self) -> bool {
        self.to > self.from
    }
}

impl std::fmt::Display for DegradeEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "step {}: {} -> {}",
            self.step,
            DegradeLevel::from_u8(self.from),
            DegradeLevel::from_u8(self.to)
        )
    }
}

/// Circuit-breaker state of one replica's dispatch gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: dispatch flows.
    Closed,
    /// Tripped: the gate is shut; waiting out a seeded-jitter exponential
    /// backoff before probing again.
    Open,
    /// Probing: the gate is reopened, and the breaker closes only after
    /// the replica demonstrates progress (or re-opens on another wedge).
    HalfOpen,
}

impl std::fmt::Display for BreakerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        };
        write!(f, "{name}")
    }
}

/// Tuning for a [`Supervisor`]. All horizons are in supervisor ticks
/// (whatever cadence the driver calls [`Supervisor::tick`] at — the
/// chaos-replay harness ticks on the virtual step clock).
#[derive(Debug, Clone, PartialEq)]
pub struct SupervisorConfig {
    /// Seed for the breaker/respawn backoff jitter; same seed + same
    /// observation sequence ⇒ same decisions (replayable recovery).
    pub seed: u64,
    /// Consecutive unchanged-snapshot-under-load probes before a replica
    /// is suspected wedged and its breaker opens.
    pub stale_probes: u32,
    /// Consecutive dispatch failures that open the breaker.
    pub failure_threshold: u32,
    /// Base backoff (ticks) an open breaker waits before half-opening;
    /// doubles per consecutive open.
    pub breaker_backoff_base: u64,
    /// Backoff cap for the breaker.
    pub breaker_backoff_max: u64,
    /// Progress probes a half-open breaker requires before closing.
    pub half_open_probes: u32,
    /// Staleness horizon at which a wedged replica is proactively drained
    /// (then recycled once empty). Should be well past `stale_probes`.
    pub drain_stale_probes: u32,
    /// Base backoff (ticks) before respawning a dead replica; doubles per
    /// consecutive respawn of the same slot.
    pub respawn_backoff_base: u64,
    /// Backoff cap for respawns.
    pub respawn_backoff_max: u64,
    /// Escalate the ladder when the unhealthy-replica fraction is at or
    /// above this for `ladder_patience` ticks.
    pub pressure_up: f64,
    /// Recover one rung when the fraction is at or below this for
    /// `ladder_patience` ticks.
    pub pressure_down: f64,
    /// Ticks a pressure (or calm) condition must persist before the
    /// ladder moves — the hysteresis that stops flapping.
    pub ladder_patience: u64,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            seed: 0,
            stale_probes: 3,
            failure_threshold: 3,
            breaker_backoff_base: 2,
            breaker_backoff_max: 64,
            half_open_probes: 2,
            drain_stale_probes: 12,
            respawn_backoff_base: 2,
            respawn_backoff_max: 32,
            pressure_up: 0.5,
            pressure_down: 0.25,
            ladder_patience: 2,
        }
    }
}

/// One decision from a [`Supervisor::tick`], to be applied by the driver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SupervisorAction {
    /// Close replica's dispatch gate
    /// ([`RouterHandle::set_dispatch_gate`](crate::RouterHandle::set_dispatch_gate)
    /// `false`).
    OpenBreaker {
        /// Slot index.
        replica: usize,
    },
    /// Reopen the gate for probing (`set_dispatch_gate true`).
    HalfOpenBreaker {
        /// Slot index.
        replica: usize,
    },
    /// The replica proved healthy; the gate stays open.
    CloseBreaker {
        /// Slot index.
        replica: usize,
    },
    /// Proactively retire a wedged replica
    /// ([`Cluster::drain`](crate::Cluster::drain)).
    DrainReplica {
        /// Slot index.
        replica: usize,
    },
    /// Bring a dead or drained-empty slot back
    /// ([`Cluster::respawn`](crate::Cluster::respawn)) — the backoff has
    /// elapsed.
    RespawnReplica {
        /// Slot index.
        replica: usize,
    },
    /// Move the degrade ladder
    /// ([`RouterHandle::set_degrade_level`](crate::RouterHandle::set_degrade_level)).
    SetDegradeLevel {
        /// Target level.
        level: DegradeLevel,
    },
}

/// Per-replica health bookkeeping.
#[derive(Debug)]
struct ReplicaHealth {
    breaker: BreakerState,
    last_snapshot: Option<StatsSnapshot>,
    stale: u32,
    consecutive_failures: u32,
    /// Consecutive breaker opens (exponential-backoff exponent).
    opens: u32,
    /// Tick at which an Open breaker half-opens.
    reopen_at: Option<u64>,
    half_open_progress: u32,
    /// Tick at which a Dead slot's respawn is due.
    respawn_at: Option<u64>,
    /// Consecutive respawns of this slot (backoff exponent).
    respawns: u32,
    /// This supervisor proactively drained the replica and intends to
    /// recycle it once empty.
    draining_for_recycle: bool,
}

impl ReplicaHealth {
    fn fresh() -> Self {
        ReplicaHealth {
            breaker: BreakerState::Closed,
            last_snapshot: None,
            stale: 0,
            consecutive_failures: 0,
            opens: 0,
            reopen_at: None,
            half_open_progress: 0,
            respawn_at: None,
            respawns: 0,
            draining_for_recycle: false,
        }
    }
}

/// The self-healing policy machine: owns per-replica health state and the
/// degrade ladder, consumes fleet observations, and emits the actions
/// that keep the fleet serving. See the module docs for the model.
#[derive(Debug)]
pub struct Supervisor {
    cfg: SupervisorConfig,
    rng: StdRng,
    replicas: Vec<ReplicaHealth>,
    tick: u64,
    pressure_streak: u64,
    calm_streak: u64,
    level: DegradeLevel,
}

/// Seeded-jitter exponential backoff: `base << exponent` capped at `max`,
/// scaled by a uniform factor in `[0.75, 1.25)` so synchronized failures
/// don't retry in lockstep. Always at least 1 tick.
fn jittered_backoff(rng: &mut StdRng, base: u64, exponent: u32, max: u64) -> u64 {
    let raw = base.saturating_shl(exponent.min(16)).min(max).max(1);
    let factor = rng.gen_range(0.75f64..1.25f64);
    ((raw as f64 * factor).round() as u64).max(1)
}

trait SaturatingShl {
    fn saturating_shl(self, by: u32) -> Self;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, by: u32) -> u64 {
        self.checked_shl(by).unwrap_or(u64::MAX)
    }
}

impl Supervisor {
    /// A supervisor over `replicas` slots.
    pub fn new(replicas: usize, cfg: SupervisorConfig) -> Self {
        let rng = StdRng::seed_from_u64(cfg.seed ^ 0x50be_7150_0000_0001u64);
        Supervisor {
            cfg,
            rng,
            replicas: (0..replicas).map(|_| ReplicaHealth::fresh()).collect(),
            tick: 0,
            pressure_streak: 0,
            calm_streak: 0,
            level: DegradeLevel::Full,
        }
    }

    /// The ladder level the supervisor currently intends.
    pub fn level(&self) -> DegradeLevel {
        self.level
    }

    /// One replica's breaker state.
    pub fn breaker(&self, replica: usize) -> BreakerState {
        self.replicas[replica].breaker
    }

    /// Ticks consumed so far.
    pub fn ticks(&self) -> u64 {
        self.tick
    }

    /// Feed one dispatch outcome for `replica` (`ok = false` for a refused
    /// or failed submit). Consecutive failures trip the breaker on the
    /// next [`Supervisor::tick`]; any success resets the streak.
    pub fn record_dispatch_outcome(&mut self, replica: usize, ok: bool) {
        if let Some(h) = self.replicas.get_mut(replica) {
            if ok {
                h.consecutive_failures = 0;
            } else {
                h.consecutive_failures = h.consecutive_failures.saturating_add(1);
            }
        }
    }

    /// Consume one fleet observation and return the actions the driver
    /// should apply, in order. Deterministic given the seed and the
    /// observation sequence.
    pub fn tick(&mut self, stats: &ClusterStats) -> Vec<SupervisorAction> {
        self.tick += 1;
        let now = self.tick;
        let mut actions = Vec::new();
        let Supervisor {
            cfg, rng, replicas, ..
        } = self;
        for (i, (state, snap)) in stats.replicas.iter().enumerate() {
            let Some(h) = replicas.get_mut(i) else { break };
            match state {
                ReplicaState::Dead => match h.respawn_at {
                    None => {
                        let wait = jittered_backoff(
                            rng,
                            cfg.respawn_backoff_base,
                            h.respawns,
                            cfg.respawn_backoff_max,
                        );
                        h.respawn_at = Some(now + wait);
                    }
                    Some(due) if now >= due => {
                        h.respawn_at = None;
                        h.respawns = h.respawns.saturating_add(1);
                        let respawns = h.respawns;
                        *h = ReplicaHealth::fresh();
                        h.respawns = respawns;
                        actions.push(SupervisorAction::RespawnReplica { replica: i });
                    }
                    Some(_) => {}
                },
                ReplicaState::Draining => {
                    // A replica this supervisor drained for being wedged is
                    // recycled once it has emptied out.
                    if h.draining_for_recycle && snap.active == 0 && snap.queued == 0 {
                        let respawns = h.respawns.saturating_add(1);
                        *h = ReplicaHealth::fresh();
                        h.respawns = respawns;
                        actions.push(SupervisorAction::RespawnReplica { replica: i });
                    }
                }
                ReplicaState::Active => {
                    let busy = snap.active > 0 || snap.queued > 0;
                    let stalled = busy && h.last_snapshot.as_ref() == Some(snap);
                    h.last_snapshot = Some(snap.clone());
                    if stalled {
                        h.stale = h.stale.saturating_add(1);
                    } else {
                        h.stale = 0;
                    }
                    match h.breaker {
                        BreakerState::Closed => {
                            if h.stale >= cfg.stale_probes
                                || h.consecutive_failures >= cfg.failure_threshold
                            {
                                h.breaker = BreakerState::Open;
                                h.opens = h.opens.saturating_add(1);
                                let wait = jittered_backoff(
                                    rng,
                                    cfg.breaker_backoff_base,
                                    h.opens - 1,
                                    cfg.breaker_backoff_max,
                                );
                                h.reopen_at = Some(now + wait);
                                actions.push(SupervisorAction::OpenBreaker { replica: i });
                            }
                        }
                        BreakerState::Open => {
                            // A wedge that outlives the drain horizon is
                            // proactively retired (conditional handover:
                            // prepare the failover before the hard
                            // failure), then recycled once empty.
                            if h.stale >= cfg.drain_stale_probes && !h.draining_for_recycle {
                                h.draining_for_recycle = true;
                                actions.push(SupervisorAction::DrainReplica { replica: i });
                            } else if h.reopen_at.is_some_and(|due| now >= due) {
                                h.reopen_at = None;
                                h.breaker = BreakerState::HalfOpen;
                                h.half_open_progress = 0;
                                actions.push(SupervisorAction::HalfOpenBreaker { replica: i });
                            }
                        }
                        BreakerState::HalfOpen => {
                            if stalled || h.consecutive_failures >= cfg.failure_threshold {
                                h.breaker = BreakerState::Open;
                                h.opens = h.opens.saturating_add(1);
                                let wait = jittered_backoff(
                                    rng,
                                    cfg.breaker_backoff_base,
                                    h.opens - 1,
                                    cfg.breaker_backoff_max,
                                );
                                h.reopen_at = Some(now + wait);
                                actions.push(SupervisorAction::OpenBreaker { replica: i });
                            } else {
                                h.half_open_progress = h.half_open_progress.saturating_add(1);
                                if h.half_open_progress >= cfg.half_open_probes {
                                    h.breaker = BreakerState::Closed;
                                    h.opens = 0;
                                    actions.push(SupervisorAction::CloseBreaker { replica: i });
                                }
                            }
                        }
                    }
                }
            }
        }

        // Degrade ladder: move one rung at a time, with hysteresis on both
        // edges. "Unhealthy" counts dead, draining, and breaker-gated
        // replicas — every slot not currently taking normal dispatch.
        let total = stats.replicas.len().max(1);
        let unhealthy = stats
            .replicas
            .iter()
            .enumerate()
            .filter(|(i, (state, _))| {
                *state != ReplicaState::Active
                    || self
                        .replicas
                        .get(*i)
                        .is_some_and(|h| h.breaker != BreakerState::Closed)
            })
            .count();
        let frac = unhealthy as f64 / total as f64;
        if frac >= self.cfg.pressure_up {
            self.pressure_streak += 1;
            self.calm_streak = 0;
        } else if frac <= self.cfg.pressure_down {
            self.calm_streak += 1;
            self.pressure_streak = 0;
        } else {
            self.pressure_streak = 0;
            self.calm_streak = 0;
        }
        if self.pressure_streak >= self.cfg.ladder_patience && self.level < DegradeLevel::ChatOnly {
            self.level = self.level.escalate();
            self.pressure_streak = 0;
            actions.push(SupervisorAction::SetDegradeLevel { level: self.level });
        } else if self.calm_streak >= self.cfg.ladder_patience && self.level > DegradeLevel::Full {
            self.level = self.level.recover();
            self.calm_streak = 0;
            actions.push(SupervisorAction::SetDegradeLevel { level: self.level });
        }
        actions
    }
}

/// Suggested wall-clock pause between supervisor ticks for drivers that
/// poll a live fleet rather than a virtual clock.
pub const HEARTBEAT_INTERVAL: Duration = Duration::from_millis(5);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClusterStats, ReplicaState};

    fn stats(replicas: Vec<(ReplicaState, StatsSnapshot)>) -> ClusterStats {
        ClusterStats {
            replicas,
            routed: 0,
            affinity_hits: 0,
            spills: 0,
            hedges: 0,
            rerouted: 0,
            shed: 0,
            degrade_level: 0,
            degrade_events: Vec::new(),
        }
    }

    fn busy(decode_steps: u64) -> StatsSnapshot {
        StatsSnapshot {
            active: 1,
            decode_steps,
            ..StatsSnapshot::default()
        }
    }

    fn tight() -> SupervisorConfig {
        SupervisorConfig {
            stale_probes: 2,
            breaker_backoff_base: 1,
            breaker_backoff_max: 1,
            half_open_probes: 1,
            ..SupervisorConfig::default()
        }
    }

    #[test]
    fn wedged_replica_trips_the_breaker_and_progress_closes_it() {
        let mut sup = Supervisor::new(1, tight());
        assert!(sup
            .tick(&stats(vec![(ReplicaState::Active, busy(1))]))
            .is_empty());
        // Bit-identical snapshot under load: one stale probe, then two —
        // the breaker opens.
        let _ = sup.tick(&stats(vec![(ReplicaState::Active, busy(1))]));
        let acts = sup.tick(&stats(vec![(ReplicaState::Active, busy(1))]));
        assert!(acts.contains(&SupervisorAction::OpenBreaker { replica: 0 }));
        assert_eq!(sup.breaker(0), BreakerState::Open);
        // Backoff (1 tick at this config) elapses: half-open probe.
        let mut half_opened = false;
        for _ in 0..4 {
            let acts = sup.tick(&stats(vec![(ReplicaState::Active, busy(1))]));
            if acts.contains(&SupervisorAction::HalfOpenBreaker { replica: 0 }) {
                half_opened = true;
                break;
            }
        }
        assert!(half_opened, "open breaker must half-open after backoff");
        // A progressing snapshot closes it.
        let acts = sup.tick(&stats(vec![(ReplicaState::Active, busy(2))]));
        assert!(acts.contains(&SupervisorAction::CloseBreaker { replica: 0 }));
        assert_eq!(sup.breaker(0), BreakerState::Closed);
    }

    #[test]
    fn consecutive_dispatch_failures_trip_the_breaker() {
        let mut sup = Supervisor::new(1, SupervisorConfig::default());
        for _ in 0..3 {
            sup.record_dispatch_outcome(0, false);
        }
        let acts = sup.tick(&stats(vec![(ReplicaState::Active, busy(1))]));
        assert!(acts.contains(&SupervisorAction::OpenBreaker { replica: 0 }));
    }

    #[test]
    fn a_success_resets_the_failure_streak() {
        let mut sup = Supervisor::new(1, SupervisorConfig::default());
        sup.record_dispatch_outcome(0, false);
        sup.record_dispatch_outcome(0, false);
        sup.record_dispatch_outcome(0, true);
        sup.record_dispatch_outcome(0, false);
        let acts = sup.tick(&stats(vec![(ReplicaState::Active, busy(1))]));
        assert!(acts.is_empty(), "streak was broken: breaker stays closed");
    }

    #[test]
    fn dead_replica_respawns_after_capped_backoff() {
        let mut sup = Supervisor::new(1, SupervisorConfig::default());
        let dead = || stats(vec![(ReplicaState::Dead, StatsSnapshot::default())]);
        let mut respawned_at = None;
        for tick in 1..=64u64 {
            let acts = sup.tick(&dead());
            if acts.contains(&SupervisorAction::RespawnReplica { replica: 0 }) {
                respawned_at = Some(tick);
                break;
            }
        }
        let first = respawned_at.expect("a dead replica must be respawned");
        assert!(first >= 2, "the backoff must actually wait");
        // Dying again backs off longer (doubled, jittered).
        let mut second = None;
        for tick in 1..=64u64 {
            let acts = sup.tick(&dead());
            if acts.contains(&SupervisorAction::RespawnReplica { replica: 0 }) {
                second = Some(tick);
                break;
            }
        }
        assert!(
            second.expect("second respawn") >= first,
            "repeat respawns must not come sooner than the first"
        );
    }

    #[test]
    fn ladder_escalates_under_pressure_and_recovers_with_hysteresis() {
        let cfg = SupervisorConfig {
            ladder_patience: 2,
            ..SupervisorConfig::default()
        };
        let mut sup = Supervisor::new(2, cfg);
        let mut step = 0u64;
        // Half the fleet dead: unhealthy fraction 0.5 >= pressure_up.
        let mut escalated = false;
        for _ in 0..4 {
            step += 1;
            let acts = sup.tick(&stats(vec![
                (ReplicaState::Dead, StatsSnapshot::default()),
                (ReplicaState::Active, busy(step)),
            ]));
            if acts.contains(&SupervisorAction::SetDegradeLevel {
                level: DegradeLevel::NoHedging,
            }) {
                escalated = true;
                break;
            }
        }
        assert!(escalated, "sustained pressure must move the ladder");
        assert_eq!(sup.level(), DegradeLevel::NoHedging);
        // Full health: recovery after the same patience, one rung at a time.
        let mut recovered = false;
        for _ in 0..4 {
            step += 1;
            let acts = sup.tick(&stats(vec![
                (ReplicaState::Active, busy(step)),
                (ReplicaState::Active, busy(step)),
            ]));
            if acts.contains(&SupervisorAction::SetDegradeLevel {
                level: DegradeLevel::Full,
            }) {
                recovered = true;
                break;
            }
        }
        assert!(recovered, "sustained calm must walk the ladder back down");
        assert_eq!(sup.level(), DegradeLevel::Full);
    }

    #[test]
    fn decisions_are_deterministic_for_a_seed() {
        let run = || {
            let mut sup = Supervisor::new(2, tight());
            let mut log = Vec::new();
            for t in 0..32u64 {
                // A scripted observation sequence: replica 0 wedges, then
                // dies, then the fleet heals.
                let obs = match t {
                    0..=5 => vec![
                        (ReplicaState::Active, busy(1)),
                        (ReplicaState::Active, busy(t + 1)),
                    ],
                    6..=12 => vec![
                        (ReplicaState::Dead, StatsSnapshot::default()),
                        (ReplicaState::Active, busy(t + 1)),
                    ],
                    _ => vec![
                        (ReplicaState::Active, busy(t + 1)),
                        (ReplicaState::Active, busy(t + 1)),
                    ],
                };
                log.push(sup.tick(&stats(obs)));
            }
            log
        };
        assert_eq!(
            run(),
            run(),
            "same seed + same observations => same actions"
        );
    }
}
