//! Pretraining corpus: documents chunked into fixed-length LM windows.

use crate::grammar::Grammar;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A tokenized corpus split into equal-length training windows.
///
/// Each window has `seq_len + 1` tokens (input + shifted target), ready to
/// batch for causal LM training.
#[derive(Debug, Clone)]
pub struct Corpus {
    windows: Vec<Vec<usize>>,
    seq_len: usize,
}

impl Corpus {
    /// Generate `n_docs` documents of `sentences_per_doc` sentences from
    /// `grammar`, concatenate, and slice into windows of `seq_len + 1`.
    ///
    /// # Panics
    ///
    /// Panics if `seq_len == 0` or the configuration produces no windows.
    pub fn generate(
        grammar: &Grammar,
        n_docs: usize,
        sentences_per_doc: usize,
        seq_len: usize,
        seed: u64,
    ) -> Self {
        assert!(seq_len >= 1, "seq_len must be >= 1");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut stream = Vec::new();
        for _ in 0..n_docs {
            stream.extend(grammar.sample_document(&mut rng, sentences_per_doc));
        }
        let win = seq_len + 1;
        let windows: Vec<Vec<usize>> = stream.chunks_exact(win).map(|c| c.to_vec()).collect();
        assert!(
            !windows.is_empty(),
            "corpus too small: {} tokens < window {}",
            stream.len(),
            win
        );
        Corpus { windows, seq_len }
    }

    /// Training windows (`seq_len + 1` tokens each).
    pub fn windows(&self) -> &[Vec<usize>] {
        &self.windows
    }

    /// Configured sequence length (predicted positions per window).
    pub fn seq_len(&self) -> usize {
        self.seq_len
    }

    /// Total token count.
    pub fn token_count(&self) -> usize {
        self.windows.len() * (self.seq_len + 1)
    }

    /// Group windows into batches of `batch_size` (drops the remainder so
    /// every batch is full — simplest deterministic batching).
    pub fn batches(&self, batch_size: usize) -> Vec<Vec<Vec<usize>>> {
        assert!(batch_size >= 1, "batch_size must be >= 1");
        self.windows
            .chunks_exact(batch_size)
            .map(|c| c.to_vec())
            .collect()
    }

    /// A held-out style sub-corpus: every `k`-th window.
    pub fn subsample(&self, k: usize) -> Corpus {
        assert!(k >= 1);
        Corpus {
            windows: self.windows.iter().step_by(k).cloned().collect(),
            seq_len: self.seq_len,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Corpus {
        let g = Grammar::default_with_seed(0);
        Corpus::generate(&g, 20, 10, 16, 1)
    }

    #[test]
    fn windows_have_uniform_length() {
        let c = corpus();
        assert!(c.windows().len() > 10);
        assert!(c.windows().iter().all(|w| w.len() == 17));
        assert_eq!(c.seq_len(), 16);
        assert_eq!(c.token_count(), c.windows().len() * 17);
    }

    #[test]
    fn batches_are_full() {
        let c = corpus();
        let b = c.batches(4);
        assert!(!b.is_empty());
        assert!(b.iter().all(|batch| batch.len() == 4));
    }

    #[test]
    fn generation_is_deterministic() {
        let g = Grammar::default_with_seed(0);
        let a = Corpus::generate(&g, 5, 5, 8, 3);
        let b = Corpus::generate(&g, 5, 5, 8, 3);
        assert_eq!(a.windows(), b.windows());
    }

    #[test]
    fn subsample_thins() {
        let c = corpus();
        let s = c.subsample(3);
        assert_eq!(s.windows().len(), c.windows().len().div_ceil(3));
        assert_eq!(s.seq_len(), c.seq_len());
    }

    #[test]
    fn tokens_in_vocab() {
        let g = Grammar::default_with_seed(0);
        let c = Corpus::generate(&g, 5, 5, 8, 3);
        let v = g.spec().vocab_size();
        assert!(c.windows().iter().flatten().all(|&t| t < v));
    }
}
