//! # edkm-data
//!
//! Synthetic data substrate for the eDKM reproduction (the substitution for
//! LLaMA's pretraining distribution, the Alpaca fine-tuning set, and the
//! lm-eval-harness benchmarks — see DESIGN.md §2).
//!
//! Everything is generated from **SynLang**, a seeded probabilistic grammar:
//! sentences are `SUBJECT VERB OBJECT [MODIFIER] .` where each subject has a
//! preferred verb, each verb a preferred object, and each object a preferred
//! modifier. These preference tables are the "world knowledge" a model
//! learns during pretraining, and the benchmark tasks
//! ([`tasks::TaskSuite`]) query exactly that knowledge — so compression
//! damage to the model shows up as task-accuracy regression, the same
//! mechanism the paper's Table 3 measures.
//!
//! All generators are deterministic given their seed.

pub mod alpaca;
pub mod corpus;
pub mod grammar;
pub mod tasks;
pub mod vocab;

pub use alpaca::AlpacaSet;
pub use corpus::Corpus;
pub use grammar::Grammar;
pub use tasks::{ClozeTask, MultiChoiceTask, Task, TaskKind, TaskSuite};
pub use vocab::VocabSpec;
