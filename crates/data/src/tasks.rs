//! Syn-benchmark generators: stand-ins for the paper's Table 3 task suite
//! (PIQA, HellaSwag, Winogrande, ARC-e, ARC-c, TriviaQA, MMLU).
//!
//! Each task queries knowledge the model can only have learned from the
//! grammar's preference tables during (pre)training, so accuracy measures
//! model fidelity — the quantity weight compression degrades. Ground truth
//! comes from the grammar itself, never from a model.

use crate::grammar::Grammar;
use crate::vocab::special;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// One multiple-choice item: score each `prompt ⧺ choice` continuation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiChoiceTask {
    /// Shared context tokens.
    pub prompt: Vec<usize>,
    /// Candidate continuations.
    pub choices: Vec<Vec<usize>>,
    /// Index of the correct choice.
    pub correct: usize,
}

/// One cloze item: greedy-generate after `prompt`, exact-match `answer`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClozeTask {
    /// Context tokens (may embed few-shot examples).
    pub prompt: Vec<usize>,
    /// The single correct next token.
    pub answer: usize,
}

/// Which benchmark a [`Task`] reproduces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskKind {
    /// 2-choice plausibility (PIQA stand-in).
    SynPiqa,
    /// 4-choice continuation (HellaSwag stand-in).
    SynHellaSwag,
    /// 2-choice consistency (Winogrande stand-in).
    SynWinogrande,
    /// 4-choice QA, easy split (ARC-e stand-in).
    SynArcEasy,
    /// 4-choice QA, challenge split (ARC-c stand-in).
    SynArcChallenge,
    /// One-shot cloze generation (TriviaQA stand-in).
    SynTriviaQa,
    /// 4-choice multi-domain exam (MMLU stand-in).
    SynMmlu,
}

impl TaskKind {
    /// Display name used in report tables.
    pub fn name(self) -> &'static str {
        match self {
            TaskKind::SynPiqa => "PIQA",
            TaskKind::SynHellaSwag => "HellaSwag",
            TaskKind::SynWinogrande => "Winogrande",
            TaskKind::SynArcEasy => "ARC-e",
            TaskKind::SynArcChallenge => "ARC-c",
            TaskKind::SynTriviaQa => "TriviaQA",
            TaskKind::SynMmlu => "MMLU",
        }
    }

    /// Chance accuracy (%) of the task.
    pub fn chance_percent(self) -> f32 {
        match self {
            TaskKind::SynPiqa | TaskKind::SynWinogrande => 50.0,
            TaskKind::SynTriviaQa => 0.0, // open vocabulary generation
            _ => 25.0,
        }
    }
}

/// A benchmark: either multiple-choice items or cloze items.
#[derive(Debug, Clone)]
pub enum Task {
    /// Log-likelihood-scored multiple choice.
    MultiChoice {
        /// Which benchmark this is.
        kind: TaskKind,
        /// The items.
        items: Vec<MultiChoiceTask>,
    },
    /// Greedy-generation cloze.
    Cloze {
        /// Which benchmark this is.
        kind: TaskKind,
        /// The items.
        items: Vec<ClozeTask>,
    },
}

impl Task {
    /// The benchmark kind.
    pub fn kind(&self) -> TaskKind {
        match self {
            Task::MultiChoice { kind, .. } | Task::Cloze { kind, .. } => *kind,
        }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        match self {
            Task::MultiChoice { items, .. } => items.len(),
            Task::Cloze { items, .. } => items.len(),
        }
    }

    /// `true` if the task has no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Shuffle `correct` into a random slot among `distractors`.
fn shuffled_choices(
    rng: &mut StdRng,
    correct: Vec<usize>,
    distractors: Vec<Vec<usize>>,
) -> (Vec<Vec<usize>>, usize) {
    let mut all: Vec<(bool, Vec<usize>)> = vec![(true, correct)];
    all.extend(distractors.into_iter().map(|d| (false, d)));
    all.shuffle(rng);
    let idx = all.iter().position(|(ok, _)| *ok).expect("correct present");
    (all.into_iter().map(|(_, c)| c).collect(), idx)
}

/// The complete Table 3 benchmark suite for one grammar.
#[derive(Debug, Clone)]
pub struct TaskSuite {
    tasks: Vec<Task>,
}

impl TaskSuite {
    /// Generate all seven benchmarks with `n` items each.
    pub fn generate(grammar: &Grammar, n: usize, seed: u64) -> Self {
        TaskSuite {
            tasks: vec![
                gen_piqa(grammar, n, seed ^ 0x01),
                gen_hellaswag(grammar, n, seed ^ 0x02),
                gen_winogrande(grammar, n, seed ^ 0x03),
                gen_arc(grammar, n, seed ^ 0x04, false),
                gen_arc(grammar, n, seed ^ 0x05, true),
                gen_triviaqa(grammar, n, seed ^ 0x06),
                gen_mmlu(grammar, n, seed ^ 0x07),
            ],
        }
    }

    /// The tasks in Table 3 column order.
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }
}

/// SynPIQA: given `s v`, pick the plausible object (2 choices).
pub fn gen_piqa(g: &Grammar, n: usize, seed: u64) -> Task {
    let mut rng = StdRng::seed_from_u64(seed);
    let spec = *g.spec();
    let items = (0..n)
        .map(|i| {
            let s = rng.gen_range(0..spec.n_subjects);
            let v = g.preferred_verb(s);
            let correct = vec![spec.object(g.preferred_object(v))];
            let distract = vec![vec![spec.object(g.distractor_object(v, i))]];
            let (choices, correct) = shuffled_choices(&mut rng, correct, distract);
            MultiChoiceTask {
                prompt: vec![special::BOS, spec.subject(s), spec.verb(v)],
                choices,
                correct,
            }
        })
        .collect();
    Task::MultiChoice {
        kind: TaskKind::SynPiqa,
        items,
    }
}

/// SynHellaSwag: continue a two-sentence context (4 choices, distractors
/// break grammar structure or preferences).
pub fn gen_hellaswag(g: &Grammar, n: usize, seed: u64) -> Task {
    let mut rng = StdRng::seed_from_u64(seed);
    let spec = *g.spec();
    let items = (0..n)
        .map(|i| {
            let s1 = rng.gen_range(0..spec.n_subjects);
            let s2 = rng.gen_range(0..spec.n_subjects);
            let mut prompt = vec![special::BOS];
            prompt.extend(g.canonical_sentence(s1));
            prompt.push(spec.subject(s2));
            let v2 = g.preferred_verb(s2);
            let o2 = g.preferred_object(v2);
            let correct = vec![spec.verb(v2), spec.object(o2), special::STOP];
            // The runner-up verb of s2: a *close* alternative continuation.
            let wrong_v = g.ranked_verbs(s2)[1];
            let distractors = vec![
                // Plausible-but-lower-probability verb for this subject.
                vec![
                    spec.verb(wrong_v),
                    spec.object(g.preferred_object(wrong_v)),
                    special::STOP,
                ],
                // Class order broken: object before verb.
                vec![spec.object(o2), spec.verb(v2), special::STOP],
                // Close wrong object for the right verb.
                vec![
                    spec.verb(v2),
                    spec.object(g.distractor_object(v2, i)),
                    special::STOP,
                ],
            ];
            let (choices, correct) = shuffled_choices(&mut rng, correct, distractors);
            MultiChoiceTask {
                prompt,
                choices,
                correct,
            }
        })
        .collect();
    Task::MultiChoice {
        kind: TaskKind::SynHellaSwag,
        items,
    }
}

/// SynWinogrande: which of two subjects is consistent with the observed
/// verb–object continuation (2 choices).
pub fn gen_winogrande(g: &Grammar, n: usize, seed: u64) -> Task {
    let mut rng = StdRng::seed_from_u64(seed);
    let spec = *g.spec();
    let items = (0..n)
        .map(|_| {
            // s_a's top verb against a rival subject drawn across the
            // closeness spectrum — from borderline to easy referent choices.
            let s_a = rng.gen_range(0..spec.n_subjects);
            let v = g.preferred_verb(s_a);
            let (s_b, a_is_right) = g.rival_subject(s_a, rng.gen_range(0..6));
            let o = g.preferred_object(v);
            // Context mentions both subjects; the consistent continuation is
            // whichever subject truly has the higher P(v | s).
            let prompt = vec![
                special::BOS,
                spec.subject(s_a),
                spec.subject(s_b),
                special::STOP,
            ];
            let right = if a_is_right { s_a } else { s_b };
            let wrong = if a_is_right { s_b } else { s_a };
            let correct = vec![spec.subject(right), spec.verb(v), spec.object(o)];
            let distractors = vec![vec![spec.subject(wrong), spec.verb(v), spec.object(o)]];
            let (choices, correct) = shuffled_choices(&mut rng, correct, distractors);
            MultiChoiceTask {
                prompt,
                choices,
                correct,
            }
        })
        .collect();
    Task::MultiChoice {
        kind: TaskKind::SynWinogrande,
        items,
    }
}

/// SynARC: 4-choice completion, corpus-shaped prompts. The easy split asks
/// for a verb's preferred object (a strong, frequent signal); the challenge
/// split asks for an object's preferred modifier (modifiers appear in only
/// ~50% of sentences, so the signal is weaker — naturally harder, like
/// ARC-c).
pub fn gen_arc(g: &Grammar, n: usize, seed: u64, challenge: bool) -> Task {
    let mut rng = StdRng::seed_from_u64(seed);
    let spec = *g.spec();
    let items = (0..n)
        .map(|_| {
            if !challenge {
                let s = rng.gen_range(0..spec.n_subjects);
                let v = g.preferred_verb(s);
                let o = g.preferred_object(v);
                let prompt = vec![special::BOS, spec.subject(s), spec.verb(v)];
                let correct = vec![spec.object(o)];
                // Easy split: weak (low-ranked) distractors.
                let mut seen = vec![o];
                let mut distractors = Vec::new();
                let mut k = 0;
                while distractors.len() < 3 && k < 4 * spec.n_objects {
                    let cand = g.weak_distractor_object(v, k);
                    if !seen.contains(&cand) {
                        seen.push(cand);
                        distractors.push(vec![spec.object(cand)]);
                    }
                    k += 1;
                }
                while distractors.len() < 3 {
                    // Tiny vocabularies: fill with any non-correct object.
                    let cand = (o + distractors.len() + 1) % spec.n_objects;
                    distractors.push(vec![spec.object(cand)]);
                }
                let (choices, correct) = shuffled_choices(&mut rng, correct, distractors);
                MultiChoiceTask {
                    prompt,
                    choices,
                    correct,
                }
            } else {
                // Challenge split: the flat modifier relation with
                // probability-closest distractors — borderline calls on a
                // weak signal.
                let s = rng.gen_range(0..spec.n_subjects);
                let v = g.preferred_verb(s);
                let o = g.preferred_object(v);
                let m = g.preferred_modifier(o);
                let prompt = vec![special::BOS, spec.subject(s), spec.verb(v), spec.object(o)];
                let correct = vec![spec.modifier(m)];
                let distractors: Vec<Vec<usize>> = g
                    .closest_modifiers(o)
                    .into_iter()
                    .take(3)
                    .map(|cand| vec![spec.modifier(cand)])
                    .collect();
                let (choices, correct) = shuffled_choices(&mut rng, correct, distractors);
                MultiChoiceTask {
                    prompt,
                    choices,
                    correct,
                }
            }
        })
        .collect();
    Task::MultiChoice {
        kind: if challenge {
            TaskKind::SynArcChallenge
        } else {
            TaskKind::SynArcEasy
        },
        items,
    }
}

/// SynTriviaQA: one-shot cloze — the paper applies one-shot here too (Table
/// 3 footnote b).
pub fn gen_triviaqa(g: &Grammar, n: usize, seed: u64) -> Task {
    gen_triviaqa_shots(g, n, seed, 1)
}

/// SynTriviaQA with a configurable number of in-context examples
/// (`shots = 0` is zero-shot; the paper's Table 3 uses one-shot).
pub fn gen_triviaqa_shots(g: &Grammar, n: usize, seed: u64, shots: usize) -> Task {
    let mut rng = StdRng::seed_from_u64(seed);
    let spec = *g.spec();
    let items = (0..n)
        .map(|_| {
            let mut prompt = vec![special::BOS];
            let s_q = rng.gen_range(0..spec.n_subjects);
            for _ in 0..shots {
                let mut s_ex = rng.gen_range(0..spec.n_subjects);
                if s_ex == s_q {
                    s_ex = (s_ex + 1) % spec.n_subjects;
                }
                prompt.extend(g.canonical_sentence(s_ex));
            }
            let v_q = g.preferred_verb(s_q);
            prompt.push(spec.subject(s_q));
            prompt.push(spec.verb(v_q));
            ClozeTask {
                prompt,
                answer: spec.object(g.preferred_object(v_q)),
            }
        })
        .collect();
    Task::Cloze {
        kind: TaskKind::SynTriviaQa,
        items,
    }
}

/// SynMMLU: 4-choice items drawn from four "domains" (subject→verb,
/// verb→object, object→modifier, subject→object composition).
pub fn gen_mmlu(g: &Grammar, n: usize, seed: u64) -> Task {
    let mut rng = StdRng::seed_from_u64(seed);
    let spec = *g.spec();
    let items = (0..n)
        .map(|i| {
            let domain = i % 4;
            // (prompt token, ranked candidate class ids, base token id).
            let (prompt_tok, ranked, base): (usize, Vec<usize>, usize) = match domain {
                0 => {
                    let s = rng.gen_range(0..spec.n_subjects);
                    (spec.subject(s), g.ranked_verbs(s), spec.verb(0))
                }
                1 => {
                    let v = rng.gen_range(0..spec.n_verbs);
                    (spec.verb(v), g.ranked_objects(v), spec.object(0))
                }
                2 => {
                    let o = rng.gen_range(0..spec.n_objects);
                    (spec.object(o), g.ranked_modifiers(o), spec.modifier(0))
                }
                _ => {
                    let s = rng.gen_range(0..spec.n_subjects);
                    let v = g.preferred_verb(s);
                    (spec.subject(s), g.ranked_objects(v), spec.object(0))
                }
            };
            let correct_tok = base + ranked[0];
            // Exam-style: the three closest runners-up as distractors.
            let distractors: Vec<Vec<usize>> = ranked[1..]
                .iter()
                .take(3)
                .map(|&c| vec![base + c])
                .collect();
            let (choices, correct) = shuffled_choices(&mut rng, vec![correct_tok], distractors);
            MultiChoiceTask {
                prompt: vec![special::BOS, special::QM, prompt_tok, special::RESP],
                choices,
                correct,
            }
        })
        .collect();
    Task::MultiChoice {
        kind: TaskKind::SynMmlu,
        items,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grammar() -> Grammar {
        Grammar::default_with_seed(0)
    }

    #[test]
    fn suite_has_seven_tasks_in_table3_order() {
        let s = TaskSuite::generate(&grammar(), 10, 0);
        let kinds: Vec<TaskKind> = s.tasks().iter().map(|t| t.kind()).collect();
        assert_eq!(
            kinds,
            vec![
                TaskKind::SynPiqa,
                TaskKind::SynHellaSwag,
                TaskKind::SynWinogrande,
                TaskKind::SynArcEasy,
                TaskKind::SynArcChallenge,
                TaskKind::SynTriviaQa,
                TaskKind::SynMmlu,
            ]
        );
        assert!(s.tasks().iter().all(|t| t.len() == 10 && !t.is_empty()));
    }

    #[test]
    fn choice_counts_match_benchmarks() {
        let s = TaskSuite::generate(&grammar(), 20, 1);
        for task in s.tasks() {
            if let Task::MultiChoice { kind, items } = task {
                let expect = match kind {
                    TaskKind::SynPiqa | TaskKind::SynWinogrande => 2,
                    _ => 4,
                };
                for it in items {
                    assert_eq!(it.choices.len(), expect, "{}", kind.name());
                    assert!(it.correct < it.choices.len());
                }
            }
        }
    }

    #[test]
    fn correct_choices_differ_from_distractors() {
        let s = TaskSuite::generate(&grammar(), 30, 2);
        for task in s.tasks() {
            if let Task::MultiChoice { items, .. } = task {
                for it in items {
                    let c = &it.choices[it.correct];
                    for (j, ch) in it.choices.iter().enumerate() {
                        if j != it.correct {
                            assert_ne!(ch, c, "distractor equals correct answer");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn correct_position_is_shuffled() {
        let Task::MultiChoice { items, .. } = gen_piqa(&grammar(), 100, 3) else {
            panic!("piqa is multi-choice")
        };
        let firsts = items.iter().filter(|i| i.correct == 0).count();
        assert!(
            firsts > 20 && firsts < 80,
            "correct index not shuffled: {firsts}/100"
        );
    }

    #[test]
    fn piqa_correct_is_preferred_object() {
        let g = grammar();
        let spec = *g.spec();
        let Task::MultiChoice { items, .. } = gen_piqa(&g, 50, 4) else {
            panic!()
        };
        for it in items {
            let s = it.prompt[1] - spec.subject(0);
            let v = g.preferred_verb(s);
            assert_eq!(it.prompt[2], spec.verb(v));
            assert_eq!(
                it.choices[it.correct],
                vec![spec.object(g.preferred_object(v))]
            );
        }
    }

    #[test]
    fn triviaqa_is_one_shot_cloze() {
        let g = grammar();
        let Task::Cloze { items, kind } = gen_triviaqa(&g, 20, 5) else {
            panic!()
        };
        assert_eq!(kind, TaskKind::SynTriviaQa);
        for it in items {
            // prompt = BOS + 4-token canonical sentence + subject + verb.
            assert_eq!(it.prompt.len(), 7);
            assert!(it.answer >= g.spec().object(0));
        }
    }

    #[test]
    fn triviaqa_shot_count_scales_prompt() {
        let g = grammar();
        for shots in [0usize, 1, 4] {
            let Task::Cloze { items, .. } = gen_triviaqa_shots(&g, 10, 6, shots) else {
                panic!()
            };
            for it in &items {
                assert_eq!(it.prompt.len(), 1 + 4 * shots + 2, "shots={shots}");
            }
        }
    }

    #[test]
    fn mmlu_covers_four_domains() {
        let Task::MultiChoice { items, .. } = gen_mmlu(&grammar(), 40, 6) else {
            panic!()
        };
        // Domain is i % 4; prompts cycle through subject/verb/object classes.
        let spec = VocabSpecHelper::default();
        let mut classes = std::collections::HashSet::new();
        for it in &items {
            classes.insert(spec.classify(it.prompt[2]));
        }
        assert!(
            classes.len() >= 3,
            "expected multiple domains, got {classes:?}"
        );
    }

    #[test]
    fn chance_levels() {
        assert_eq!(TaskKind::SynPiqa.chance_percent(), 50.0);
        assert_eq!(TaskKind::SynMmlu.chance_percent(), 25.0);
        assert_eq!(TaskKind::SynTriviaQa.chance_percent(), 0.0);
        assert_eq!(TaskKind::SynArcEasy.name(), "ARC-e");
    }

    #[test]
    fn generation_is_deterministic() {
        let g = grammar();
        let a = TaskSuite::generate(&g, 5, 9);
        let b = TaskSuite::generate(&g, 5, 9);
        for (x, y) in a.tasks().iter().zip(b.tasks()) {
            match (x, y) {
                (Task::MultiChoice { items: ix, .. }, Task::MultiChoice { items: iy, .. }) => {
                    assert_eq!(ix, iy)
                }
                (Task::Cloze { items: ix, .. }, Task::Cloze { items: iy, .. }) => {
                    assert_eq!(ix, iy)
                }
                _ => panic!("task kind mismatch"),
            }
        }
    }

    /// Tiny helper to classify a token id for the MMLU domain test.
    #[derive(Default)]
    struct VocabSpecHelper {
        spec: crate::vocab::VocabSpec,
    }

    impl VocabSpecHelper {
        fn classify(&self, id: usize) -> &'static str {
            let r = self.spec.render(id);
            match r.chars().next() {
                Some('s') => "subject",
                Some('v') => "verb",
                Some('o') => "object",
                Some('m') => "modifier",
                _ => "special",
            }
        }
    }
}
