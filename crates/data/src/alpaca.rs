//! SynAlpaca: an instruction-following fine-tuning set.
//!
//! The paper fine-tunes LLaMA-7B on the Alpaca dataset while compressing.
//! Our stand-in uses the same grammar knowledge wrapped in an
//! instruction/response frame:
//!
//! ```text
//! <bos> <ins> s? v? ? <resp> o! [m!] . <eos>
//! ```
//!
//! where the response tokens follow the grammar's preference tables. The
//! compression pipeline fine-tunes on these sequences.

use crate::grammar::Grammar;
use crate::vocab::special;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generated instruction-tuning dataset of fixed-length sequences.
#[derive(Debug, Clone)]
pub struct AlpacaSet {
    examples: Vec<Vec<usize>>,
    seq_len: usize,
}

impl AlpacaSet {
    /// Generate `n` examples, each padded/truncated to `seq_len + 1` tokens.
    ///
    /// # Panics
    ///
    /// Panics if `seq_len < 9` (the frame does not fit).
    pub fn generate(grammar: &Grammar, n: usize, seq_len: usize, seed: u64) -> Self {
        assert!(seq_len >= 9, "seq_len must fit the instruction frame");
        let mut rng = StdRng::seed_from_u64(seed ^ 0xa1_9a_ca);
        let spec = *grammar.spec();
        let mut examples = Vec::with_capacity(n);
        for _ in 0..n {
            let s = rng.gen_range(0..spec.n_subjects);
            let v = grammar.preferred_verb(s);
            let o = grammar.preferred_object(v);
            let mut ex = vec![
                special::BOS,
                special::INS,
                spec.subject(s),
                spec.verb(v),
                special::QM,
                special::RESP,
                spec.object(o),
            ];
            if rng.gen::<f32>() < 0.5 {
                ex.push(spec.modifier(grammar.preferred_modifier(o)));
            }
            ex.push(special::STOP);
            ex.push(special::EOS);
            // Pad to uniform length for batching.
            while ex.len() < seq_len + 1 {
                ex.push(special::PAD);
            }
            ex.truncate(seq_len + 1);
            examples.push(ex);
        }
        AlpacaSet { examples, seq_len }
    }

    /// The examples (`seq_len + 1` tokens each).
    pub fn examples(&self) -> &[Vec<usize>] {
        &self.examples
    }

    /// Sequence length (predicted positions).
    pub fn seq_len(&self) -> usize {
        self.seq_len
    }

    /// Group into full batches of `batch_size`.
    pub fn batches(&self, batch_size: usize) -> Vec<Vec<Vec<usize>>> {
        self.examples
            .chunks_exact(batch_size)
            .map(|c| c.to_vec())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_structure() {
        let g = Grammar::default_with_seed(0);
        let a = AlpacaSet::generate(&g, 50, 12, 1);
        assert_eq!(a.examples().len(), 50);
        for ex in a.examples() {
            assert_eq!(ex.len(), 13);
            assert_eq!(ex[0], special::BOS);
            assert_eq!(ex[1], special::INS);
            assert_eq!(ex[4], special::QM);
            assert_eq!(ex[5], special::RESP);
        }
        assert_eq!(a.seq_len(), 12);
    }

    #[test]
    fn responses_follow_preferences() {
        let g = Grammar::default_with_seed(3);
        let spec = *g.spec();
        let a = AlpacaSet::generate(&g, 100, 12, 2);
        for ex in a.examples() {
            let s = ex[2] - spec.subject(0);
            let v = g.preferred_verb(s);
            assert_eq!(ex[3], spec.verb(v));
            assert_eq!(ex[6], spec.object(g.preferred_object(v)));
        }
    }

    #[test]
    fn deterministic() {
        let g = Grammar::default_with_seed(0);
        assert_eq!(
            AlpacaSet::generate(&g, 10, 12, 5).examples(),
            AlpacaSet::generate(&g, 10, 12, 5).examples()
        );
    }

    #[test]
    fn batching() {
        let g = Grammar::default_with_seed(0);
        let a = AlpacaSet::generate(&g, 10, 12, 5);
        let b = a.batches(4);
        assert_eq!(b.len(), 2);
        assert!(b.iter().all(|x| x.len() == 4));
    }
}
