//! Vocabulary layout of SynLang.

use serde::{Deserialize, Serialize};

/// Reserved token ids.
pub mod special {
    /// Padding.
    pub const PAD: usize = 0;
    /// Beginning of document.
    pub const BOS: usize = 1;
    /// End of document.
    pub const EOS: usize = 2;
    /// Sentence terminator `.`.
    pub const STOP: usize = 3;
    /// Question marker (used by QA-style tasks).
    pub const QM: usize = 4;
    /// Instruction marker (SynAlpaca).
    pub const INS: usize = 5;
    /// Response marker (SynAlpaca).
    pub const RESP: usize = 6;
    /// Number of reserved ids.
    pub const COUNT: usize = 7;
}

/// Sizes of the four content classes and the derived id ranges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VocabSpec {
    /// Subject tokens.
    pub n_subjects: usize,
    /// Verb tokens.
    pub n_verbs: usize,
    /// Object tokens.
    pub n_objects: usize,
    /// Modifier tokens.
    pub n_modifiers: usize,
}

impl Default for VocabSpec {
    fn default() -> Self {
        VocabSpec {
            n_subjects: 12,
            n_verbs: 12,
            n_objects: 16,
            n_modifiers: 8,
        }
    }
}

impl VocabSpec {
    /// Total vocabulary size (reserved + content tokens).
    pub fn vocab_size(&self) -> usize {
        special::COUNT + self.n_subjects + self.n_verbs + self.n_objects + self.n_modifiers
    }

    /// Token id of subject `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range (same for the sibling methods).
    pub fn subject(&self, i: usize) -> usize {
        assert!(
            i < self.n_subjects,
            "subject {i} out of {}",
            self.n_subjects
        );
        special::COUNT + i
    }

    /// Token id of verb `i`.
    pub fn verb(&self, i: usize) -> usize {
        assert!(i < self.n_verbs, "verb {i} out of {}", self.n_verbs);
        special::COUNT + self.n_subjects + i
    }

    /// Token id of object `i`.
    pub fn object(&self, i: usize) -> usize {
        assert!(i < self.n_objects, "object {i} out of {}", self.n_objects);
        special::COUNT + self.n_subjects + self.n_verbs + i
    }

    /// Token id of modifier `i`.
    pub fn modifier(&self, i: usize) -> usize {
        assert!(
            i < self.n_modifiers,
            "modifier {i} out of {}",
            self.n_modifiers
        );
        special::COUNT + self.n_subjects + self.n_verbs + self.n_objects + i
    }

    /// Render a token id for debugging (`s3`, `v0`, `o7`, `m1`, `.`, …).
    pub fn render(&self, id: usize) -> String {
        match id {
            special::PAD => "<pad>".into(),
            special::BOS => "<bos>".into(),
            special::EOS => "<eos>".into(),
            special::STOP => ".".into(),
            special::QM => "?".into(),
            special::INS => "<ins>".into(),
            special::RESP => "<resp>".into(),
            _ => {
                let i = id - special::COUNT;
                if i < self.n_subjects {
                    return format!("s{i}");
                }
                let i = i - self.n_subjects;
                if i < self.n_verbs {
                    return format!("v{i}");
                }
                let i = i - self.n_verbs;
                if i < self.n_objects {
                    return format!("o{i}");
                }
                let i = i - self.n_objects;
                if i < self.n_modifiers {
                    return format!("m{i}");
                }
                format!("<unk:{id}>")
            }
        }
    }

    /// Render a sequence of ids as space-joined tokens.
    pub fn render_seq(&self, ids: &[usize]) -> String {
        ids.iter()
            .map(|&i| self.render(i))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_are_disjoint_and_cover() {
        let v = VocabSpec::default();
        let mut seen = std::collections::HashSet::new();
        for i in 0..v.n_subjects {
            assert!(seen.insert(v.subject(i)));
        }
        for i in 0..v.n_verbs {
            assert!(seen.insert(v.verb(i)));
        }
        for i in 0..v.n_objects {
            assert!(seen.insert(v.object(i)));
        }
        for i in 0..v.n_modifiers {
            assert!(seen.insert(v.modifier(i)));
        }
        assert_eq!(seen.len() + special::COUNT, v.vocab_size());
        assert!(seen
            .iter()
            .all(|&id| id >= special::COUNT && id < v.vocab_size()));
    }

    #[test]
    fn render_roundtrip_classes() {
        let v = VocabSpec::default();
        assert_eq!(v.render(v.subject(3)), "s3");
        assert_eq!(v.render(v.verb(0)), "v0");
        assert_eq!(v.render(v.object(15)), "o15");
        assert_eq!(v.render(v.modifier(7)), "m7");
        assert_eq!(v.render(special::STOP), ".");
        assert_eq!(v.render_seq(&[special::BOS, v.subject(0)]), "<bos> s0");
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn out_of_range_subject_panics() {
        VocabSpec::default().subject(99);
    }

    #[test]
    fn default_fits_in_64() {
        assert!(VocabSpec::default().vocab_size() <= 64);
    }
}
