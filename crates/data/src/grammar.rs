//! The SynLang generative grammar.
//!
//! Conditionals are *graded*: each subject has a softmax distribution over
//! verbs (and verbs over objects, objects over modifiers) derived from
//! seeded Gaussian scores at a class-specific temperature. Benchmark tasks
//! pit the top-ranked continuation against close runners-up, so accuracy
//! measures how faithfully a model represents fine probability ratios —
//! the quantity weight compression erodes. This is why the Syn-benchmarks,
//! like the real ones in the paper's Table 3, sit *between* chance and 100%.

use crate::vocab::{special, VocabSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded probabilistic grammar over [`VocabSpec`] tokens.
#[derive(Debug, Clone)]
pub struct Grammar {
    spec: VocabSpec,
    seed: u64,
    /// `P(verb | subject)` as probabilities, row-major `[ns][nv]`.
    verb_probs: Vec<Vec<f32>>,
    /// `P(object | verb)`, `[nv][no]`.
    obj_probs: Vec<Vec<f32>>,
    /// `P(modifier | object)`, `[no][nm]`.
    mod_probs: Vec<Vec<f32>>,
}

fn softmax(scores: &[f32], tau: f32) -> Vec<f32> {
    let mx = scores.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = scores.iter().map(|&s| ((s - mx) / tau).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

fn score_table(rng: &mut StdRng, rows: usize, cols: usize, tau: f32) -> Vec<Vec<f32>> {
    (0..rows)
        .map(|_| {
            let scores: Vec<f32> = (0..cols)
                .map(|_| {
                    // Box–Muller normal.
                    let u1: f32 = rng.gen::<f32>().max(1e-9);
                    let u2: f32 = rng.gen();
                    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
                })
                .collect();
            softmax(&scores, tau)
        })
        .collect()
}

impl Grammar {
    /// Temperature of the verb/object conditionals (sharper = easier).
    pub const TAU_STRONG: f32 = 0.45;
    /// Temperature of the modifier conditional (flatter = the "challenge"
    /// relation behind Syn-ARC-c).
    pub const TAU_WEAK: f32 = 0.75;

    /// Build a grammar from a vocabulary spec and seed.
    pub fn new(spec: VocabSpec, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5e_ed_6a_77);
        let verb_probs = score_table(&mut rng, spec.n_subjects, spec.n_verbs, Self::TAU_STRONG);
        let obj_probs = score_table(&mut rng, spec.n_verbs, spec.n_objects, Self::TAU_STRONG);
        let mod_probs = score_table(&mut rng, spec.n_objects, spec.n_modifiers, Self::TAU_WEAK);
        Grammar {
            spec,
            seed,
            verb_probs,
            obj_probs,
            mod_probs,
        }
    }

    /// Default grammar (default vocab, given seed).
    pub fn default_with_seed(seed: u64) -> Self {
        Self::new(VocabSpec::default(), seed)
    }

    /// The vocabulary spec.
    pub fn spec(&self) -> &VocabSpec {
        &self.spec
    }

    /// Seed this grammar was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// `P(verb = v | subject = s)`.
    pub fn verb_prob(&self, s: usize, v: usize) -> f32 {
        self.verb_probs[s][v]
    }

    /// `P(object = o | verb = v)`.
    pub fn object_prob(&self, v: usize, o: usize) -> f32 {
        self.obj_probs[v][o]
    }

    /// `P(modifier = m | object = o)`.
    pub fn modifier_prob(&self, o: usize, m: usize) -> f32 {
        self.mod_probs[o][m]
    }

    fn ranked(probs: &[f32]) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..probs.len()).collect();
        idx.sort_by(|&a, &b| {
            probs[b]
                .partial_cmp(&probs[a])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        idx
    }

    /// Verb indices sorted by `P(v|s)` descending.
    pub fn ranked_verbs(&self, s: usize) -> Vec<usize> {
        Self::ranked(&self.verb_probs[s])
    }

    /// Object indices sorted by `P(o|v)` descending.
    pub fn ranked_objects(&self, v: usize) -> Vec<usize> {
        Self::ranked(&self.obj_probs[v])
    }

    /// Modifier indices sorted by `P(m|o)` descending.
    pub fn ranked_modifiers(&self, o: usize) -> Vec<usize> {
        Self::ranked(&self.mod_probs[o])
    }

    /// Most likely verb of subject `s`.
    pub fn preferred_verb(&self, s: usize) -> usize {
        self.ranked_verbs(s)[0]
    }

    /// Most likely object of verb `v`.
    pub fn preferred_object(&self, v: usize) -> usize {
        self.ranked_objects(v)[0]
    }

    /// Most likely modifier of object `o`.
    pub fn preferred_modifier(&self, o: usize) -> usize {
        self.ranked_modifiers(o)[0]
    }

    /// Indices (excluding `target`) sorted by closeness of `ln p` to
    /// `ln p[target]` — the items nearest the decision boundary.
    fn closest_by_logprob(probs: &[f32], target: usize) -> Vec<usize> {
        let lt = probs[target].max(1e-12).ln();
        let mut idx: Vec<usize> = (0..probs.len()).filter(|&i| i != target).collect();
        idx.sort_by(|&a, &b| {
            let da = (probs[a].max(1e-12).ln() - lt).abs();
            let db = (probs[b].max(1e-12).ln() - lt).abs();
            da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
        });
        idx
    }

    /// Objects closest in log-probability to verb `v`'s top object — the
    /// borderline distractors that make Syn-tasks sensitive to model
    /// fidelity.
    pub fn closest_objects(&self, v: usize) -> Vec<usize> {
        Self::closest_by_logprob(&self.obj_probs[v], self.preferred_object(v))
    }

    /// Modifiers closest in log-probability to object `o`'s top modifier.
    pub fn closest_modifiers(&self, o: usize) -> Vec<usize> {
        Self::closest_by_logprob(&self.mod_probs[o], self.preferred_modifier(o))
    }

    /// A rival subject for a Winogrande-style item on subject `s`: among the
    /// subjects whose probability of `s`'s top verb is closest to `s`'s own
    /// (a margin *spectrum*, indexed by `salt`). Returns `(rival, truth)`
    /// where `truth` is `true` iff `s` genuinely has the higher probability.
    pub fn rival_subject(&self, s: usize, salt: usize) -> (usize, bool) {
        let v = self.preferred_verb(s);
        let p_s = self.verb_prob(s, v).max(1e-12).ln();
        let mut cands: Vec<usize> = (0..self.spec.n_subjects)
            .filter(|&c| c != s && self.preferred_verb(c) != v)
            .collect();
        if cands.is_empty() {
            // Degenerate grammar: every subject shares a top verb.
            let other = (s + 1) % self.spec.n_subjects;
            return (other, self.verb_prob(s, v) >= self.verb_prob(other, v));
        }
        cands.sort_by(|&a, &b| {
            let da = (self.verb_prob(a, v).max(1e-12).ln() - p_s).abs();
            let db = (self.verb_prob(b, v).max(1e-12).ln() - p_s).abs();
            da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
        });
        let rival = cands[salt % cands.len().min(6)];
        (rival, self.verb_prob(s, v) >= self.verb_prob(rival, v))
    }

    /// A wrong object for verb `v`, drawn from the full closeness spectrum
    /// (`salt = 0` is the borderline case, larger salts progressively
    /// easier), guaranteed ≠ the top object.
    pub fn distractor_object(&self, v: usize, salt: usize) -> usize {
        let closest = self.closest_objects(v);
        closest[salt % closest.len()]
    }

    /// A *weak* wrong object for verb `v` (bottom of the ranking, selected
    /// by `salt`) — the easy-split distractor.
    pub fn weak_distractor_object(&self, v: usize, salt: usize) -> usize {
        let ranked = self.ranked_objects(v);
        let tail = ranked.len() / 2;
        ranked[ranked.len() - 1 - (salt % tail)]
    }

    fn sample_categorical(rng: &mut StdRng, probs: &[f32]) -> usize {
        let mut u: f32 = rng.gen();
        for (i, &p) in probs.iter().enumerate() {
            if u < p {
                return i;
            }
            u -= p;
        }
        probs.len() - 1
    }

    /// Sample one sentence (`S V O [M] .`) as token ids.
    pub fn sample_sentence(&self, rng: &mut StdRng) -> Vec<usize> {
        let s = rng.gen_range(0..self.spec.n_subjects);
        self.sample_sentence_with_subject(rng, s)
    }

    /// Sample a sentence that starts with subject index `s`.
    pub fn sample_sentence_with_subject(&self, rng: &mut StdRng, s: usize) -> Vec<usize> {
        let v = Self::sample_categorical(rng, &self.verb_probs[s]);
        let o = Self::sample_categorical(rng, &self.obj_probs[v]);
        let mut out = vec![self.spec.subject(s), self.spec.verb(v), self.spec.object(o)];
        if rng.gen::<f32>() < 0.5 {
            let m = Self::sample_categorical(rng, &self.mod_probs[o]);
            out.push(self.spec.modifier(m));
        }
        out.push(special::STOP);
        out
    }

    /// Sample a document: `BOS sentence… EOS`.
    pub fn sample_document(&self, rng: &mut StdRng, n_sentences: usize) -> Vec<usize> {
        let mut out = vec![special::BOS];
        for _ in 0..n_sentences {
            out.extend(self.sample_sentence(rng));
        }
        out.push(special::EOS);
        out
    }

    /// The most likely full sentence for subject `s` (no modifier): the
    /// all-argmax path — the grammar's "ground-truth fact" about `s`.
    pub fn canonical_sentence(&self, s: usize) -> Vec<usize> {
        let v = self.preferred_verb(s);
        let o = self.preferred_object(v);
        vec![
            self.spec.subject(s),
            self.spec.verb(v),
            self.spec.object(o),
            special::STOP,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn deterministic_given_seed() {
        let g1 = Grammar::default_with_seed(7);
        let g2 = Grammar::default_with_seed(7);
        let s1 = g1.sample_document(&mut rng(1), 5);
        let s2 = g2.sample_document(&mut rng(1), 5);
        assert_eq!(s1, s2);
        let g3 = Grammar::default_with_seed(8);
        assert_ne!(
            (0..g1.spec().n_subjects)
                .map(|s| g1.preferred_verb(s))
                .collect::<Vec<_>>(),
            (0..g3.spec().n_subjects)
                .map(|s| g3.preferred_verb(s))
                .collect::<Vec<_>>(),
            "different seeds should (almost surely) differ"
        );
    }

    #[test]
    fn conditionals_are_distributions() {
        let g = Grammar::default_with_seed(0);
        for s in 0..g.spec().n_subjects {
            let total: f32 = (0..g.spec().n_verbs).map(|v| g.verb_prob(s, v)).sum();
            assert!((total - 1.0).abs() < 1e-4, "P(v|s={s}) sums to {total}");
        }
        for v in 0..g.spec().n_verbs {
            let total: f32 = (0..g.spec().n_objects).map(|o| g.object_prob(v, o)).sum();
            assert!((total - 1.0).abs() < 1e-4);
        }
        for o in 0..g.spec().n_objects {
            let total: f32 = (0..g.spec().n_modifiers)
                .map(|m| g.modifier_prob(o, m))
                .sum();
            assert!((total - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn ranking_orders_by_probability() {
        let g = Grammar::default_with_seed(1);
        for s in 0..g.spec().n_subjects {
            let ranked = g.ranked_verbs(s);
            for w in ranked.windows(2) {
                assert!(g.verb_prob(s, w[0]) >= g.verb_prob(s, w[1]));
            }
            assert_eq!(ranked[0], g.preferred_verb(s));
        }
    }

    #[test]
    fn top_choice_has_clear_but_not_total_mass() {
        // The whole point of the graded grammar: the argmax is likely but
        // the runner-up is close enough to be flipped by model damage.
        let g = Grammar::default_with_seed(0);
        let mut top_sum = 0.0;
        let mut ratio_sum = 0.0;
        let ns = g.spec().n_subjects;
        for s in 0..ns {
            let ranked = g.ranked_verbs(s);
            let p1 = g.verb_prob(s, ranked[0]);
            let p2 = g.verb_prob(s, ranked[1]);
            top_sum += p1;
            ratio_sum += p2 / p1;
            assert!(p1 < 0.999, "top verb should not be deterministic");
        }
        let mean_top = top_sum / ns as f32;
        let mean_ratio = ratio_sum / ns as f32;
        assert!(
            mean_top > 0.25 && mean_top < 0.95,
            "mean top prob {mean_top}"
        );
        assert!(
            mean_ratio > 0.05,
            "runner-up must be competitive: {mean_ratio}"
        );
    }

    #[test]
    fn modifier_relation_is_flatter_than_verb_relation() {
        let g = Grammar::default_with_seed(0);
        let mean_top_verb: f32 = (0..g.spec().n_subjects)
            .map(|s| g.verb_prob(s, g.preferred_verb(s)))
            .sum::<f32>()
            / g.spec().n_subjects as f32;
        let mean_top_mod: f32 = (0..g.spec().n_objects)
            .map(|o| g.modifier_prob(o, g.preferred_modifier(o)))
            .sum::<f32>()
            / g.spec().n_objects as f32;
        assert!(
            mean_top_mod < mean_top_verb,
            "modifiers must be the weaker signal: {mean_top_mod} vs {mean_top_verb}"
        );
    }

    #[test]
    fn sentences_are_well_formed() {
        let g = Grammar::default_with_seed(0);
        let spec = *g.spec();
        let mut r = rng(42);
        for _ in 0..200 {
            let s = g.sample_sentence(&mut r);
            assert!(s.len() == 4 || s.len() == 5, "len {}", s.len());
            assert_eq!(*s.last().unwrap(), special::STOP);
            assert!(s[0] >= spec.subject(0) && s[0] <= spec.subject(spec.n_subjects - 1));
            assert!(s[1] >= spec.verb(0) && s[1] <= spec.verb(spec.n_verbs - 1));
            assert!(s[2] >= spec.object(0) && s[2] <= spec.object(spec.n_objects - 1));
        }
    }

    #[test]
    fn sampling_tracks_conditional_frequencies() {
        let g = Grammar::default_with_seed(3);
        let mut r = rng(9);
        let s = 4;
        let pref = g.spec().verb(g.preferred_verb(s));
        let expect = g.verb_prob(s, g.preferred_verb(s));
        let hits = (0..2000)
            .filter(|_| g.sample_sentence_with_subject(&mut r, s)[1] == pref)
            .count() as f32
            / 2000.0;
        assert!(
            (hits - expect).abs() < 0.05,
            "empirical {hits} vs true {expect}"
        );
    }

    #[test]
    fn distractors_differ_from_correct() {
        let g = Grammar::default_with_seed(5);
        for v in 0..g.spec().n_verbs {
            let top = g.preferred_object(v);
            for salt in 0..8 {
                assert_ne!(g.distractor_object(v, salt), top);
                assert_ne!(g.weak_distractor_object(v, salt), top);
            }
            // Close distractors outrank weak ones.
            let close_p = g.object_prob(v, g.distractor_object(v, 0));
            let weak_p = g.object_prob(v, g.weak_distractor_object(v, 0));
            assert!(close_p >= weak_p);
        }
    }

    #[test]
    fn document_has_bos_eos() {
        let g = Grammar::default_with_seed(0);
        let d = g.sample_document(&mut rng(0), 3);
        assert_eq!(d[0], special::BOS);
        assert_eq!(*d.last().unwrap(), special::EOS);
        assert!(d.len() > 10);
    }

    #[test]
    fn canonical_sentence_is_argmax_path() {
        let g = Grammar::default_with_seed(1);
        let c = g.canonical_sentence(2);
        let v = g.preferred_verb(2);
        assert_eq!(c[1], g.spec().verb(v));
        assert_eq!(c[2], g.spec().object(g.preferred_object(v)));
    }

    proptest! {
        /// Every sampled token is inside the vocabulary.
        #[test]
        fn prop_tokens_in_vocab(seed in any::<u64>(), n in 1usize..6) {
            let g = Grammar::default_with_seed(seed);
            let d = g.sample_document(&mut rng(seed), n);
            let v = g.spec().vocab_size();
            prop_assert!(d.iter().all(|&t| t < v));
        }

        /// Rankings are permutations.
        #[test]
        fn prop_rankings_are_permutations(seed in any::<u64>(), s in 0usize..12) {
            let g = Grammar::default_with_seed(seed);
            let r = g.ranked_verbs(s);
            let mut sorted = r.clone();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, (0..g.spec().n_verbs).collect::<Vec<_>>());
        }
    }
}
