//! # edkm-chaos
//!
//! Deterministic, seeded fault injection for the edkm serving fleet.
//!
//! A [`FaultPlan`] is to failures what a
//! [`Trace`](../edkm_workload/struct.Trace.html) is to load: a fully
//! reproducible schedule, generated from a `(profile, seed)` pair,
//! pinned on the **virtual step clock** (the fleet's monotonically
//! accumulated decode-step count), with a canonical byte encoding
//! ([`FaultPlan::to_bytes`]) and an FNV-1a [`FaultPlan::fingerprint`]
//! so CI can assert that two runs injected *exactly* the same faults at
//! exactly the same logical times. Physical timing still varies run to
//! run; the invariants the chaos harness checks (no request lost, no
//! duplicate token index, survivors bit-identical, pools at baseline)
//! hold regardless of where in real time each fault lands.
//!
//! Faults are applied through the [`FaultHook`] trait, implemented here
//! for [`Cluster`] — the hook maps each [`FaultKind`] onto the fleet's
//! own control surface (kill, stall injection, KV-capacity squeeze,
//! stream severing), so chaos costs nothing when it is not driving:
//! there is no chaos branch anywhere in the serving hot path.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use rand::{rngs::StdRng, Rng, SeedableRng};

use edkm_cluster::{Cluster, ReplicaState};

/// One kind of injected fault. Replica indices refer to cluster slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Abrupt worker kill: the replica dies mid-step; in-flight requests
    /// fail over to survivors via the router's redispatch path.
    ReplicaKill {
        /// Slot to kill.
        replica: usize,
    },
    /// Slow-replica brownout: the worker sleeps one stall tick per step
    /// for `steps` scheduling steps before doing real work again.
    Stall {
        /// Slot to slow down.
        replica: usize,
        /// Number of decode steps to stall.
        steps: u64,
    },
    /// KV-pool exhaustion squeeze: the replica's block pool cap shrinks
    /// to `blocks` (never revoking checked-out blocks, only refusing new
    /// checkouts), restored to its original cap `restore_after` virtual
    /// steps later.
    KvSqueeze {
        /// Slot whose pool is squeezed.
        replica: usize,
        /// Temporary cap in blocks.
        blocks: usize,
        /// Virtual steps until the original cap is restored.
        restore_after: u64,
    },
    /// Channel drop between router and replica: every live token stream
    /// on the replica is severed without a terminal event, as if the
    /// connection was cut. Streams recover via cluster redispatch.
    ChannelDrop {
        /// Slot whose streams are severed.
        replica: usize,
    },
    /// Container bit-flip on respawn reload: the *next* respawn of this
    /// slot must first attempt a corrupted model load (which fails
    /// checksum verification) before retrying clean. Applied by the
    /// replay harness's respawn path, not by the cluster hook.
    RespawnBitFlip {
        /// Slot whose next respawn is corrupted.
        replica: usize,
    },
}

impl FaultKind {
    /// The slot this fault targets.
    pub fn replica(&self) -> usize {
        match *self {
            FaultKind::ReplicaKill { replica }
            | FaultKind::Stall { replica, .. }
            | FaultKind::KvSqueeze { replica, .. }
            | FaultKind::ChannelDrop { replica }
            | FaultKind::RespawnBitFlip { replica } => replica,
        }
    }

    fn tag(&self) -> u64 {
        match self {
            FaultKind::ReplicaKill { .. } => 1,
            FaultKind::Stall { .. } => 2,
            FaultKind::KvSqueeze { .. } => 3,
            FaultKind::ChannelDrop { .. } => 4,
            FaultKind::RespawnBitFlip { .. } => 5,
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            FaultKind::ReplicaKill { replica } => write!(f, "kill(r{replica})"),
            FaultKind::Stall { replica, steps } => write!(f, "stall(r{replica}, {steps} steps)"),
            FaultKind::KvSqueeze {
                replica,
                blocks,
                restore_after,
            } => write!(
                f,
                "kv-squeeze(r{replica}, {blocks} blocks, restore after {restore_after})"
            ),
            FaultKind::ChannelDrop { replica } => write!(f, "channel-drop(r{replica})"),
            FaultKind::RespawnBitFlip { replica } => write!(f, "respawn-bit-flip(r{replica})"),
        }
    }
}

/// One scheduled fault: a [`FaultKind`] pinned to a virtual step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Virtual step (fleet-wide accumulated decode steps) at which the
    /// fault fires.
    pub step: u64,
    /// What happens.
    pub kind: FaultKind,
}

impl std::fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "step {}: {}", self.step, self.kind)
    }
}

/// A named fault mix. Each profile stresses a different failure mode of
/// the fleet; CI replays a fixed trace under every one of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultProfile {
    /// Abrupt replica kills (some with corrupted-respawn reloads) plus a
    /// channel drop: exercises failover bit-identity and respawn backoff.
    ReplicaChurn,
    /// Stalled decode steps across the fleet: exercises wedge detection,
    /// the circuit breaker, and the degrade ladder.
    SlowBrownout,
    /// KV-pool capacity squeezes: exercises admission under memory
    /// pressure and pool-ledger integrity on restore.
    KvPressure,
}

impl FaultProfile {
    /// Every shipped profile, in canonical order.
    pub const ALL: [FaultProfile; 3] = [
        FaultProfile::ReplicaChurn,
        FaultProfile::SlowBrownout,
        FaultProfile::KvPressure,
    ];

    /// Stable tag mixed into the generation seed and the byte encoding.
    pub fn tag(&self) -> u64 {
        match self {
            FaultProfile::ReplicaChurn => 0xc4a5_0001_0000_0011,
            FaultProfile::SlowBrownout => 0xc4a5_0002_0000_0022,
            FaultProfile::KvPressure => 0xc4a5_0003_0000_0033,
        }
    }

    /// Parse a profile name as accepted by `--chaos-profile`.
    pub fn parse(name: &str) -> Option<FaultProfile> {
        match name {
            "replica-churn" | "churn" => Some(FaultProfile::ReplicaChurn),
            "slow-brownout" | "brownout" => Some(FaultProfile::SlowBrownout),
            "kv-pressure" | "kv" => Some(FaultProfile::KvPressure),
            _ => None,
        }
    }
}

impl std::fmt::Display for FaultProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            FaultProfile::ReplicaChurn => "replica-churn",
            FaultProfile::SlowBrownout => "slow-brownout",
            FaultProfile::KvPressure => "kv-pressure",
        };
        write!(f, "{name}")
    }
}

/// A deterministic fault schedule: same `(profile, seed, replicas,
/// horizon)` ⇒ byte-identical plan, checkable via
/// [`FaultPlan::fingerprint`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    profile: FaultProfile,
    seed: u64,
    replicas: usize,
    horizon: u64,
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// Generate the schedule for `profile` over a fleet of `replicas`
    /// slots and a virtual-step `horizon`. All draws come from
    /// `StdRng::seed_from_u64(seed ^ profile.tag())`, so the plan is a
    /// pure function of its inputs.
    pub fn generate(profile: FaultProfile, seed: u64, replicas: usize, horizon: u64) -> FaultPlan {
        let mut rng = StdRng::seed_from_u64(seed ^ profile.tag());
        let replicas = replicas.max(1);
        let horizon = horizon.max(16);
        let mut events = Vec::new();
        // Faults land in the middle band of the horizon: early enough that
        // recovery completes inside the run, late enough that the fleet
        // has real in-flight state to disturb.
        let lo = horizon / 8;
        let hi = (horizon * 3 / 4).max(lo + 1);
        match profile {
            FaultProfile::ReplicaChurn => {
                // Kill up to half the fleet (never all of it), sometimes
                // corrupting the respawn reload first.
                let kills = (replicas / 2).max(1);
                for _ in 0..kills {
                    let replica = rng.gen_range(0..replicas);
                    let step = rng.gen_range(lo..hi);
                    if rng.gen_bool(0.5) {
                        events.push(FaultEvent {
                            step,
                            kind: FaultKind::RespawnBitFlip { replica },
                        });
                    }
                    events.push(FaultEvent {
                        step,
                        kind: FaultKind::ReplicaKill { replica },
                    });
                }
                events.push(FaultEvent {
                    step: rng.gen_range(lo..hi),
                    kind: FaultKind::ChannelDrop {
                        replica: rng.gen_range(0..replicas),
                    },
                });
            }
            FaultProfile::SlowBrownout => {
                // Stall most of the fleet at staggered times; one channel
                // drop rides along so brownout recovery also exercises the
                // redispatch path.
                let stalls = replicas.max(2);
                for _ in 0..stalls {
                    events.push(FaultEvent {
                        step: rng.gen_range(lo..hi),
                        kind: FaultKind::Stall {
                            replica: rng.gen_range(0..replicas),
                            steps: rng.gen_range(20..80),
                        },
                    });
                }
                events.push(FaultEvent {
                    step: rng.gen_range(lo..hi),
                    kind: FaultKind::ChannelDrop {
                        replica: rng.gen_range(0..replicas),
                    },
                });
            }
            FaultProfile::KvPressure => {
                // Squeeze a majority of pools hard, restore later; one
                // stall keeps the breaker honest under memory pressure.
                let squeezes = (replicas * 2 / 3).max(1);
                for _ in 0..squeezes {
                    events.push(FaultEvent {
                        step: rng.gen_range(lo..hi),
                        kind: FaultKind::KvSqueeze {
                            replica: rng.gen_range(0..replicas),
                            blocks: rng.gen_range(4..12),
                            restore_after: rng.gen_range(16..64),
                        },
                    });
                }
                events.push(FaultEvent {
                    step: rng.gen_range(lo..hi),
                    kind: FaultKind::Stall {
                        replica: rng.gen_range(0..replicas),
                        steps: rng.gen_range(10..40),
                    },
                });
            }
        }
        // Canonical order: by step, ties broken by generation order
        // (stable sort), so the byte encoding is unique per input.
        events.sort_by_key(|e| e.step);
        FaultPlan {
            profile,
            seed,
            replicas,
            horizon,
            events,
        }
    }

    /// The profile this plan was generated from.
    pub fn profile(&self) -> FaultProfile {
        self.profile
    }

    /// The generation seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Fleet size the plan targets.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// Virtual-step horizon the plan was laid out over.
    pub fn horizon(&self) -> u64 {
        self.horizon
    }

    /// The scheduled faults, sorted by virtual step.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Canonical little-endian byte encoding: header (profile tag, seed,
    /// replicas, horizon, event count) followed by one fixed-shape record
    /// per event. Two plans are the same schedule iff their bytes match.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let push = |out: &mut Vec<u8>, v: u64| out.extend_from_slice(&v.to_le_bytes());
        push(&mut out, self.profile.tag());
        push(&mut out, self.seed);
        push(&mut out, self.replicas as u64);
        push(&mut out, self.horizon);
        push(&mut out, self.events.len() as u64);
        for e in &self.events {
            push(&mut out, e.step);
            push(&mut out, e.kind.tag());
            push(&mut out, e.kind.replica() as u64);
            let (a, b) = match e.kind {
                FaultKind::Stall { steps, .. } => (steps, 0),
                FaultKind::KvSqueeze {
                    blocks,
                    restore_after,
                    ..
                } => (blocks as u64, restore_after),
                _ => (0, 0),
            };
            push(&mut out, a);
            push(&mut out, b);
        }
        out
    }

    /// FNV-1a hash of [`FaultPlan::to_bytes`] — the plan's identity in
    /// logs, bench JSON, and CI assertions.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.to_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

/// What a [`FaultHook`] did with one [`FaultEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultApplied {
    /// The replica was killed.
    Killed {
        /// Slot killed.
        replica: usize,
    },
    /// Stall steps were queued on the replica's engine.
    Stalled {
        /// Slot stalled.
        replica: usize,
        /// Steps queued.
        steps: u64,
    },
    /// The replica's KV pool cap was shrunk.
    KvSqueezed {
        /// Slot squeezed.
        replica: usize,
        /// The cap before the squeeze, for later restore.
        previous_blocks: usize,
    },
    /// Live token streams on the replica were severed.
    StreamsDropped {
        /// Slot affected.
        replica: usize,
        /// Streams severed.
        severed: usize,
    },
    /// The fault applies at a later lifecycle point (respawn bit-flip);
    /// the driver must honour it when it respawns the slot.
    Deferred,
    /// The fault was a no-op in the current fleet state (for example a
    /// kill aimed at an already-dead slot).
    Skipped {
        /// Why nothing happened.
        reason: &'static str,
    },
}

impl std::fmt::Display for FaultApplied {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            FaultApplied::Killed { replica } => write!(f, "killed r{replica}"),
            FaultApplied::Stalled { replica, steps } => {
                write!(f, "stalled r{replica} for {steps} steps")
            }
            FaultApplied::KvSqueezed {
                replica,
                previous_blocks,
            } => write!(f, "squeezed r{replica} (was {previous_blocks} blocks)"),
            FaultApplied::StreamsDropped { replica, severed } => {
                write!(f, "dropped {severed} streams on r{replica}")
            }
            FaultApplied::Deferred => write!(f, "deferred to respawn"),
            FaultApplied::Skipped { reason } => write!(f, "skipped: {reason}"),
        }
    }
}

/// The seam through which a [`FaultPlan`] touches a system under test.
///
/// The production serving path has no chaos branches at all — the hook
/// maps faults onto control surfaces that already exist for operations
/// (kill, drain, stall injection, pool retuning), so chaos off means
/// literally zero added cost.
pub trait FaultHook {
    /// Apply one scheduled fault, returning what actually happened.
    fn apply_fault(&mut self, event: &FaultEvent) -> FaultApplied;
}

impl FaultHook for Cluster {
    fn apply_fault(&mut self, event: &FaultEvent) -> FaultApplied {
        let replica = event.kind.replica();
        if replica >= self.replicas() {
            return FaultApplied::Skipped {
                reason: "replica index out of range",
            };
        }
        match event.kind {
            FaultKind::ReplicaKill { replica } => {
                if self.replica_state(replica) == ReplicaState::Dead {
                    return FaultApplied::Skipped {
                        reason: "replica already dead",
                    };
                }
                self.kill(replica);
                FaultApplied::Killed { replica }
            }
            FaultKind::Stall { replica, steps } => {
                self.engine_handle(replica).inject_stall(steps);
                FaultApplied::Stalled { replica, steps }
            }
            FaultKind::KvSqueeze {
                replica, blocks, ..
            } => {
                let previous_blocks = self.pool(replica).set_max_blocks(blocks);
                FaultApplied::KvSqueezed {
                    replica,
                    previous_blocks,
                }
            }
            FaultKind::ChannelDrop { replica } => {
                let severed = self.engine_handle(replica).drop_streams();
                FaultApplied::StreamsDropped { replica, severed }
            }
            FaultKind::RespawnBitFlip { .. } => FaultApplied::Deferred,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_and_seed_sensitive() {
        for profile in FaultProfile::ALL {
            let a = FaultPlan::generate(profile, 7, 4, 512);
            let b = FaultPlan::generate(profile, 7, 4, 512);
            assert_eq!(a, b, "{profile}: same inputs must give same plan");
            assert_eq!(a.to_bytes(), b.to_bytes(), "{profile}: bytes");
            assert_eq!(a.fingerprint(), b.fingerprint(), "{profile}: fingerprint");
            let c = FaultPlan::generate(profile, 8, 4, 512);
            assert_ne!(
                a.fingerprint(),
                c.fingerprint(),
                "{profile}: different seed must change the plan"
            );
            assert!(!a.events().is_empty(), "{profile}: plan must have faults");
            assert!(
                a.events().windows(2).all(|w| w[0].step <= w[1].step),
                "{profile}: events sorted by step"
            );
        }
    }

    #[test]
    fn profiles_have_distinct_fingerprints() {
        let fps: Vec<u64> = FaultProfile::ALL
            .iter()
            .map(|p| FaultPlan::generate(*p, 7, 4, 512).fingerprint())
            .collect();
        assert_ne!(fps[0], fps[1]);
        assert_ne!(fps[1], fps[2]);
        assert_ne!(fps[0], fps[2]);
    }

    #[test]
    fn profile_parse_round_trips() {
        for profile in FaultProfile::ALL {
            assert_eq!(FaultProfile::parse(&profile.to_string()), Some(profile));
        }
        assert_eq!(FaultProfile::parse("nope"), None);
    }

    #[test]
    fn events_stay_inside_horizon() {
        for profile in FaultProfile::ALL {
            let plan = FaultPlan::generate(profile, 3, 3, 256);
            for e in plan.events() {
                assert!(e.step < 256, "{profile}: {e} past horizon");
                assert!(e.kind.replica() < 3, "{profile}: {e} targets ghost replica");
            }
        }
    }
}
