//! End-to-end LLM compression: pretrain a small LLaMA-style model on the
//! synthetic corpus, fine-tune-and-compress it with eDKM at 3 bits, and
//! compare against round-to-nearest quantization.
//!
//! This is the paper's headline workflow (Section 3) at example scale.
//!
//! Run with `cargo run --release --example compress_llm`.

use edkm::core::{CompressSpec, CompressionPipeline, EdkmConfig};
use edkm::data::{AlpacaSet, Corpus, Grammar};
use edkm::eval::perplexity;
use edkm::nn::{AdamWConfig, LlamaConfig, LlamaModel, LmBatch, TrainConfig, Trainer};
use edkm::quant::{quantize_model, RtnQuantizer};
use edkm::tensor::{DType, Device};

fn fresh_copy(base: &LlamaModel) -> LlamaModel {
    let m = LlamaModel::new(*base.config(), base.dtype(), base.device(), 1);
    m.copy_weights_from(base);
    m
}

fn main() {
    let cfg = LlamaConfig {
        vocab: 64,
        d_model: 64,
        n_heads: 4,
        n_layers: 2,
        d_ff: 128,
        max_seq: 33,
    };
    let grammar = Grammar::default_with_seed(0);
    let corpus = Corpus::generate(&grammar, 200, 10, 32, 1);
    let alpaca = AlpacaSet::generate(&grammar, 256, 12, 2);

    // 1. Pretrain (stand-in for the released LLaMA-7B checkpoint).
    println!("pretraining on {} token windows...", corpus.windows().len());
    let base = LlamaModel::new(cfg, DType::Bf16, Device::Cpu, 0);
    let params = base.params();
    let mut trainer = Trainer::new(TrainConfig {
        optim: AdamWConfig {
            lr: 3e-3,
            ..AdamWConfig::default()
        },
        ..TrainConfig::default()
    });
    let batches: Vec<LmBatch> = corpus.batches(8).into_iter().map(LmBatch::new).collect();
    for step in 0..150 {
        let b = &batches[step % batches.len()];
        let loss = trainer.step(&base, b, &params, None);
        if step % 50 == 0 {
            println!("  step {step}: loss {loss:.3}");
        }
    }
    let held_out = corpus.subsample(23);
    let base_ppl = perplexity(&base, held_out.windows());
    println!(
        "base model: ppl {:.2}, {} bytes (bf16)\n",
        base_ppl,
        base.native_size_bytes()
    );

    // 2. RTN 3-bit (post-training, no fine-tuning).
    let rtn_model = fresh_copy(&base);
    let rtn_report = quantize_model(&rtn_model, &RtnQuantizer::new(3, 0), None);
    let rtn_ppl = perplexity(&rtn_model, held_out.windows());
    println!(
        "RTN 3-bit : ppl {:.2}, {} bytes",
        rtn_ppl, rtn_report.size_bytes
    );

    // 3. eDKM 3-bit (train-time clustering; fine-tune on instructions mixed
    //    with pretraining-distribution windows, as in the table3 binary).
    let edkm_model = fresh_copy(&base);
    let mut spec = CompressSpec::with_bits(3);
    spec.epochs = 1;
    spec.edkm = EdkmConfig::full(8);
    spec.dkm.iters = 4;
    spec.train.optim.lr = 3e-4;
    let corpus_b = corpus.batches(4);
    let alpaca_b = alpaca.batches(4);
    let mixed: Vec<LmBatch> = (0..60)
        .map(|i| {
            if i % 2 == 0 {
                LmBatch::new(corpus_b[i % corpus_b.len()].clone())
            } else {
                LmBatch::new(alpaca_b[i % alpaca_b.len()].clone())
            }
        })
        .collect();
    let result = CompressionPipeline::new(spec).fine_tune_and_compress(&edkm_model, &mixed);
    let shipped = fresh_copy(&base);
    result.compressed.apply_to(&shipped);
    let edkm_ppl = perplexity(&shipped, held_out.windows());
    println!(
        "eDKM 3-bit: ppl {:.2}, {} bytes (palettized + 8-bit embeddings)",
        edkm_ppl,
        result.compressed.size_bytes()
    );

    println!(
        "\nsummary: base {base_ppl:.2} | eDKM {edkm_ppl:.2} | RTN {rtn_ppl:.2}  (lower is better)"
    );
    if edkm_ppl < rtn_ppl {
        println!("eDKM beats RTN at equal bit width, as in the paper's Table 3.");
    }
}
