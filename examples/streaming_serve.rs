//! Streaming generation through the [`ServeEngine`] handle API: token
//! streams, priorities, backpressure, cancellation, deadlines and the
//! stats snapshot — the full request lifecycle a serving front-end builds
//! on.
//!
//! Run with `cargo run --release --example streaming_serve`.
//!
//! [`ServeEngine`]: edkm::core::ServeEngine

use edkm::core::{
    CompressSpec, EngineConfig, PalettizedModel, Priority, Request, SamplingConfig, ServeEngine,
    SubmitError, TokenEvent,
};
use edkm::nn::{LlamaConfig, LlamaModel};
use edkm::tensor::{runtime, DType, Device};

fn main() {
    runtime::reset();
    // A small compressed decoder to serve from.
    let cfg = LlamaConfig {
        vocab: 64,
        d_model: 64,
        n_heads: 4,
        n_layers: 2,
        d_ff: 128,
        max_seq: 64,
    };
    let dense = LlamaModel::new(cfg, DType::Bf16, Device::Cpu, 7);
    let mut spec = CompressSpec::with_bits(3);
    spec.dkm.iters = 3;
    let served = PalettizedModel::from_dense(&dense, &spec).expect("servable export");

    // The engine owns the scheduler loop on a worker thread; handles are
    // cheap clones that any client thread can hold.
    let engine = ServeEngine::new(
        served,
        EngineConfig {
            max_batch: 4,
            queue_capacity: 8,
        },
    );
    let handle = engine.handle();

    // 1. A normal streaming request: consume tokens as they decode.
    let (id, stream) = handle
        .submit(
            Request::new(vec![1, 2, 3])
                .max_new_tokens(10)
                .sampling(SamplingConfig::with_top_k(0.9, 8, 11)),
        )
        .expect("submit");
    print!("{id} streams:");
    let mut finish = None;
    for ev in stream {
        match ev {
            TokenEvent::Token { token, .. } => print!(" {token}"),
            TokenEvent::Finished(r) => finish = Some(r.finish),
        }
    }
    println!("  -> {:?}", finish.expect("terminal"));

    // 2. A high-priority request jumps the admission queue; a stop token
    //    ends generation early and frees its KV blocks the same step.
    let (vip, mut vip_stream) = handle
        .submit(
            Request::new(vec![9, 9])
                .max_new_tokens(30)
                .priority(Priority::High)
                .stop_token(0),
        )
        .expect("submit");
    let vip_resp = vip_stream.wait().expect("terminal");
    println!(
        "{vip} (high priority, stop token 0): {:?} after {} tokens",
        vip_resp.finish, vip_resp.generated
    );

    // 3. Cancellation: once `cancel` returns, the request never emits
    //    another token and its KV blocks are already back in the pool.
    let (doomed, mut doomed_stream) = handle
        .submit(Request::new(vec![4, 4, 4]).max_new_tokens(40))
        .expect("submit");
    assert!(handle.cancel(doomed).was_cancelled());
    let resp = doomed_stream.wait().expect("terminal");
    println!(
        "{doomed} cancelled: {:?} ({} tokens)",
        resp.finish, resp.generated
    );

    // 4. A deadline in scheduler steps: the engine gives up on its own.
    let (hasty, mut hasty_stream) = handle
        .submit(
            Request::new(vec![5, 6])
                .max_new_tokens(50)
                .deadline_steps(3),
        )
        .expect("submit");
    let resp = hasty_stream.wait().expect("terminal");
    println!(
        "{hasty} deadline 3 steps: {:?} after {} tokens",
        resp.finish, resp.generated
    );

    // 5. Backpressure: try_submit refuses instead of queueing without
    //    bound once the engine holds queue_capacity requests.
    let mut held = Vec::new();
    let overflow = loop {
        match handle.try_submit(Request::new(vec![1]).max_new_tokens(30)) {
            Ok(sub) => held.push(sub),
            Err(e) => break e,
        }
    };
    assert_eq!(overflow, SubmitError::Full);
    println!(
        "backpressure: try_submit refused at {} in-flight requests",
        handle.in_flight()
    );
    for (_, mut s) in held {
        s.wait();
    }

    // 6. The stats snapshot aggregates the whole run.
    let stats = handle.stats();
    println!(
        "stats: {} tokens over {} steps, {} finished / {} cancelled / {} expired, \
         peak KV {} bytes, TTFT buckets {:?}",
        stats.tokens_generated,
        stats.decode_steps,
        stats.finished,
        stats.cancelled,
        stats.expired,
        stats.kv_peak_bytes,
        stats.ttft_steps.counts()
    );
    engine.shutdown();
}
