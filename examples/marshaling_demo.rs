//! A guided tour of cross-device tensor marshaling (Section 2.1 / Fig. 2 of
//! the paper): how views share storage on-device, how naive offloading
//! duplicates them on the CPU, and how the registry + graph walk fix it.
//!
//! Run with `cargo run --example marshaling_demo`.

use edkm::autograd::SavedTensorHooks;
use edkm::core::{EdkmConfig, EdkmHooks};
use edkm::tensor::{runtime, DType, Device, Tensor};

fn show(label: &str) {
    println!(
        "  {:<38} GPU {:>9} B   CPU {:>9} B",
        label,
        runtime::gpu_live_bytes(),
        runtime::cpu_live_bytes()
    );
}

fn main() {
    println!("--- on-device views share storage ---");
    runtime::reset();
    let x0 = Tensor::rand(&[512, 512], DType::F32, Device::gpu(), 7);
    show("x0 = rand([512,512])");
    let x1 = x0.reshape(&[262144, 1]);
    let x2 = x0.transpose(0, 1);
    let x3 = x0.slice(0, 0, 256);
    show("x1, x2, x3 = views of x0");
    assert_eq!(x1.storage_id(), x0.storage_id());
    assert_eq!(x2.storage_id(), x0.storage_id());
    assert_eq!(x3.storage_id(), x0.storage_id());
    println!("  (all four tensors share {})\n", x0.storage_id());

    println!("--- naive offload duplicates every view ---");
    runtime::reset();
    let x0 = Tensor::rand(&[512, 512], DType::F32, Device::gpu(), 7);
    let x1 = x0.reshape(&[262144, 1]);
    let x2 = x0.transpose(0, 1);
    let naive = EdkmHooks::new(EdkmConfig::baseline());
    let _p0 = naive.pack(&x0);
    let _p1 = naive.pack(&x1);
    let _p2 = naive.pack(&x2);
    show("pack(x0); pack(x1); pack(x2)");
    println!("  three saves -> three CPU copies\n");

    println!("--- marshaling: registry hit for same storage ---");
    runtime::reset();
    let x0 = Tensor::rand(&[512, 512], DType::F32, Device::gpu(), 7);
    let x1 = x0.reshape(&[262144, 1]);
    let x2 = x0.transpose(0, 1);
    let hooks = EdkmHooks::new(EdkmConfig::marshal_only());
    let p0 = hooks.pack(&x0);
    let p1 = hooks.pack(&x1);
    let p2 = hooks.pack(&x2);
    show("pack(x0); pack(x1); pack(x2)");
    println!("  stats: {:?}\n", hooks.stats());

    println!("--- the graph walk: new storage, same contents ---");
    // contiguous() materializes a transposed view into NEW storage; a plain
    // storage-id lookup would miss it, but the forward-graph walk (<= 4
    // invariant hops, exactly as in the paper) finds the offloaded ancestor.
    let x3 = x2.contiguous().reshape(&[1024, 256]);
    let before = runtime::cpu_live_bytes();
    let p3 = hooks.pack(&x3);
    show("pack(view(contiguous(transpose)))");
    assert_eq!(runtime::cpu_live_bytes(), before, "no new CPU copy");
    let s = hooks.stats();
    println!(
        "  direct hits: {}, walk hits: {}, misses: {}\n",
        s.direct_hits, s.walk_hits, s.misses
    );

    println!("--- unpack restores every view exactly ---");
    for (name, packed, original) in [
        ("x0", &p0, x0.clone()),
        ("x1", &p1, x1.clone()),
        ("x2", &p2, x2.clone()),
        ("x3", &p3, x3.clone()),
    ] {
        let back = hooks.unpack(packed);
        let exact = edkm::tensor::ops::max_abs_diff(&back, &original) == 0.0;
        println!(
            "  unpack({name}) -> shape {:?} on {} (bitwise exact: {exact})",
            back.shape(),
            back.device()
        );
        assert!(exact);
    }
    let t = runtime::transfer_snapshot();
    println!(
        "\nPCIe: {} B down, {} B up — one storage each way despite 4 saves/unpacks",
        t.d2h_bytes, t.h2d_bytes
    );
}
