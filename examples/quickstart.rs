//! Quickstart: cluster a weight matrix with DKM, inspect the attention-map
//! memory problem, and fix it with eDKM hooks.
//!
//! Run with `cargo run --release --example quickstart`.

use edkm::autograd::{push_hooks, SavedTensorHooks, Var};
use edkm::core::{DkmConfig, DkmLayer, EdkmConfig, EdkmHooks};
use edkm::tensor::{runtime, DType, Device, Tensor};
use std::sync::Arc;

fn main() {
    // ------------------------------------------------------------------
    // 1. Differentiable K-Means clustering of a weight matrix.
    // ------------------------------------------------------------------
    runtime::reset();
    let w = Var::param(Tensor::randn(&[256, 64], DType::Bf16, Device::gpu(), 0).map(|v| v * 0.02));
    let dkm = DkmLayer::new(DkmConfig::with_bits(3)); // 8 centroids = 3 bits/weight

    let out = dkm.cluster(&w);
    println!(
        "clustered {} weights into {} centroids:",
        w.value().numel(),
        out.centroids.numel()
    );
    println!("  centroids = {:?}", out.centroids.to_vec());

    // Gradients flow through the attention map back to the weights, so a
    // task loss can shape the clustering — that's the "train-time" part.
    out.soft.square().mean_all().backward();
    println!(
        "  gradient reached the raw weights: |dW| = {:.3e}",
        edkm::tensor::ops::l2_norm(&w.grad().expect("grad"))
    );

    // ------------------------------------------------------------------
    // 2. The memory problem: the attention map is saved for backward.
    // ------------------------------------------------------------------
    runtime::reset();
    let w = Var::param(Tensor::randn(&[256, 64], DType::Bf16, Device::gpu(), 0).map(|v| v * 0.02));
    let naive = Arc::new(EdkmHooks::new(EdkmConfig::baseline())); // offload only
    {
        let _g = push_hooks(Arc::clone(&naive) as Arc<dyn SavedTensorHooks>);
        dkm.cluster(&w).soft.square().mean_all().backward();
    }
    let naive_bytes = runtime::peak_bytes(Device::Cpu);
    println!(
        "\nnaive CPU offload of saved tensors : {:>9} bytes on CPU",
        naive_bytes
    );

    // ------------------------------------------------------------------
    // 3. The fix: eDKM hooks (marshaling + uniquification + sharding).
    // ------------------------------------------------------------------
    runtime::reset();
    let w = Var::param(Tensor::randn(&[256, 64], DType::Bf16, Device::gpu(), 0).map(|v| v * 0.02));
    let edkm = Arc::new(EdkmHooks::new(EdkmConfig::full(8)));
    {
        let _g = push_hooks(Arc::clone(&edkm) as Arc<dyn SavedTensorHooks>);
        dkm.cluster(&w).soft.square().mean_all().backward();
    }
    let edkm_bytes = runtime::peak_bytes(Device::Cpu);
    let stats = edkm.stats();
    println!(
        "with eDKM (M+U+S, 8 learners)      : {:>9} bytes on CPU  ({:.1}x less)",
        edkm_bytes,
        naive_bytes as f64 / edkm_bytes.max(1) as f64
    );
    println!(
        "  hook stats: {} saves, {:.0}% deduplicated, {} storages offloaded",
        stats.packs,
        100.0 * stats.dedup_rate(),
        stats.misses
    );

    // ------------------------------------------------------------------
    // 4. Ship it: palettize to LUT + 3-bit packed indices.
    // ------------------------------------------------------------------
    let pal = dkm.palettize(w.value());
    println!(
        "\npalettized: {} weights -> {} bytes ({:.2}x smaller than bf16)",
        w.value().numel(),
        pal.size_bytes(),
        (w.value().numel() * 2) as f64 / pal.size_bytes() as f64
    );
}
