//! Tour of the baseline weight optimization systems of the paper's Fig. 1:
//! the Table 3 quantizers (RTN, GPTQ, AWQ, SmoothQuant), plus the pruning
//! and normalization branches. Each optimizes the same projection; the
//! calibration output error is the mechanism behind the Table 3 accuracy
//! ordering.
//!
//! Run with `cargo run --release --example baseline_zoo`.

use edkm::quant::{
    AwqQuantizer, GptqQuantizer, MagnitudePruner, RtnQuantizer, SmoothQuantQuantizer, WeightNormed,
    WeightQuantizer,
};
use edkm::tensor::{ops as t, DType, Device, Tensor};

/// ‖X·Wᵀ − X·Ŵᵀ‖² — what a linear layer's consumers actually see.
fn output_mse(x: &Tensor, w: &Tensor, wq: &Tensor) -> f64 {
    let y = t::matmul(x, &w.t());
    let yq = t::matmul(x, &wq.t());
    y.to_vec()
        .iter()
        .zip(yq.to_vec())
        .map(|(a, b)| ((a - b) as f64).powi(2))
        .sum()
}

fn main() {
    edkm::tensor::runtime::reset();
    // A projection with realistic structure: a few loud input channels
    // (attention outputs routinely have outlier dimensions).
    let in_dim = 64;
    let out_dim = 32;
    let w = Tensor::randn(&[out_dim, in_dim], DType::F32, Device::Cpu, 0).map(|v| v * 0.05);
    let channel_scale: Vec<f32> = (0..in_dim)
        .map(|i| if i % 16 == 0 { 12.0 } else { 0.4 })
        .collect();
    let x_raw = Tensor::randn(&[256, in_dim], DType::F32, Device::Cpu, 1);
    let xd: Vec<f32> = x_raw
        .to_vec()
        .chunks(in_dim)
        .flat_map(|row| {
            row.iter()
                .zip(&channel_scale)
                .map(|(v, s)| v * s)
                .collect::<Vec<_>>()
        })
        .collect();
    let x = Tensor::from_vec(xd, &[256, in_dim], DType::F32, Device::Cpu);

    println!("quantizing a [{out_dim}, {in_dim}] projection at 3 and 4 bits");
    println!("calibration: 256 rows with outlier channels every 16 dims\n");
    println!(
        "{:<16} {:>5} {:>14} {:>12}",
        "method", "bits", "output MSE", "size (B)"
    );

    for bits in [4u8, 3] {
        let methods: Vec<Box<dyn WeightQuantizer>> = vec![
            Box::new(RtnQuantizer::new(bits, 0)),
            Box::new(GptqQuantizer::new(bits, 32)),
            Box::new(AwqQuantizer::new(bits, 32)),
            Box::new(SmoothQuantQuantizer::new(bits, 32)),
        ];
        for m in methods {
            let r = m.quantize(&w, Some(&x));
            println!(
                "{:<16} {:>5} {:>14.4} {:>12}",
                m.method_name(),
                bits,
                output_mse(&x, &w, &r.dequantized),
                r.size_bytes
            );
        }
        println!();
    }
    println!("expected shape (as in the paper): GPTQ/AWQ < RTN at equal bits,");
    println!("and every method degrades going from 4 to 3 bits.");

    // The other two branches of Fig. 1's taxonomy.
    println!("\n--- pruning (Fig. 1 branch) ---");
    println!(
        "{:<16} {:>8} {:>14} {:>12}",
        "pattern", "sparsity", "output MSE", "size (B)"
    );
    for pruner in [
        MagnitudePruner::unstructured(0.5),
        MagnitudePruner::unstructured(0.75),
        MagnitudePruner::two_of_four(),
    ] {
        let r = pruner.prune(&w);
        let label = match pruner.granularity() {
            edkm::quant::PruneGranularity::Unstructured { .. } => "unstructured",
            edkm::quant::PruneGranularity::NOfM { n, m } => {
                println!(
                    "{:<16} {:>8.2} {:>14.4} {:>12}",
                    format!("{n}:{m}"),
                    r.achieved_sparsity,
                    output_mse(&x, &w, &r.pruned),
                    r.size_bytes
                );
                continue;
            }
        };
        println!(
            "{:<16} {:>8.2} {:>14.4} {:>12}",
            label,
            r.achieved_sparsity,
            output_mse(&x, &w, &r.pruned),
            r.size_bytes
        );
    }

    println!("\n--- normalization (Fig. 1 branch) ---");
    let wn = WeightNormed::decompose(&w);
    for bits in [4u8, 3] {
        let (q, size) = wn.quantize_directions(bits);
        println!(
            "weight-norm dirs @{bits}b   output MSE {:>12.4}   size {size} B",
            output_mse(&x, &w, &q)
        );
    }
}
