//! Ship and serve a compressed model: export with the pipeline, serialize
//! to disk ("the 2.5 GB file"), load it back, and run a projection straight
//! from the palette with [`edkm::core::PalettizedLinear`] — the LUT-GEMM
//! path the paper's target accelerators use.
//!
//! Run with `cargo run --release --example palettized_inference`.

use edkm::core::{
    CompressSpec, CompressedModel, CompressedTensor, CompressionPipeline, PalettizedLinear,
};
use edkm::nn::{LlamaConfig, LlamaModel};
use edkm::tensor::{ops as t, DType, Device, Tensor};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A (pretend-pretrained) model, compressed at 3 bits.
    let cfg = LlamaConfig {
        vocab: 64,
        d_model: 64,
        n_heads: 4,
        n_layers: 2,
        d_ff: 128,
        max_seq: 32,
    };
    let model = LlamaModel::new(cfg, DType::Bf16, Device::Cpu, 0);
    let mut spec = CompressSpec::with_bits(3);
    // Mixed precision: keep the LM head at 4 bits (it is accuracy-critical).
    spec.per_layer_bits = vec![("lm_head".into(), 4)];
    let compressed = CompressionPipeline::new(spec).export(&model);
    println!(
        "exported {} entries, {} bytes logical",
        compressed.entries().len(),
        compressed.size_bytes()
    );

    // 2. Serialize to disk and load back.
    let path = std::env::temp_dir().join("edkm_model.bin");
    std::fs::write(&path, compressed.to_bytes())?;
    let file_len = std::fs::metadata(&path)?.len();
    println!("wrote {} ({file_len} bytes on disk)", path.display());
    let loaded = CompressedModel::from_bytes(&std::fs::read(&path)?)?;
    println!("loaded back: {} entries", loaded.entries().len());

    // 3. Serve a projection directly from the palette (no dense decode).
    let (name, q_proj) = loaded
        .entries()
        .iter()
        .find_map(|(n, e)| match e {
            CompressedTensor::Palettized(p) if n.contains("q_proj") => Some((n.clone(), p.clone())),
            _ => None,
        })
        .expect("model has a palettized q_proj");
    let lin = PalettizedLinear::new(q_proj);
    println!(
        "\nserving {name}: [{} -> {}], {} LUT entries, {} bytes",
        lin.in_features(),
        lin.out_features(),
        lin.weights().k(),
        lin.size_bytes()
    );

    let x = Tensor::randn(&[4, lin.in_features()], DType::F32, Device::Cpu, 1);
    let y = lin.forward(&x);

    // Cross-check against a dense matmul on the decoded weights.
    let dense = lin.weights().decode();
    let reference = t::matmul(&x, &dense.t());
    println!(
        "LUT-GEMM output [4, {}], max deviation from dense decode: {:.2e}",
        lin.out_features(),
        t::max_abs_diff(&y, &reference)
    );

    std::fs::remove_file(&path).ok();
    Ok(())
}
