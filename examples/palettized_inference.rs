//! Ship and serve a compressed model: export with the pipeline, serialize
//! to disk ("the 2.5 GB file"), load it back, rebuild a whole palettized
//! decoder from the container, and serve generation requests through the
//! streaming [`ServeEngine`] handle API — tokens arrive incrementally over
//! a [`TokenStream`], exactly how a serving front-end consumes them.
//!
//! Run with `cargo run --release --example palettized_inference`.
//!
//! [`ServeEngine`]: edkm::core::ServeEngine
//! [`TokenStream`]: edkm::core::TokenStream

use edkm::core::{
    CompressSpec, CompressedModel, CompressionPipeline, EngineConfig, PalettizedModel, Request,
    SamplingConfig, ServeEngine, TokenEvent,
};
use edkm::nn::{LlamaConfig, LlamaModel};
use edkm::tensor::{DType, Device};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A (pretend-pretrained) model, compressed at 3 bits.
    let cfg = LlamaConfig {
        vocab: 64,
        d_model: 64,
        n_heads: 4,
        n_layers: 2,
        d_ff: 128,
        max_seq: 32,
    };
    let model = LlamaModel::new(cfg, DType::Bf16, Device::Cpu, 0);
    let spec = CompressSpec::with_bits(3);
    let compressed = CompressionPipeline::new(spec).export(&model);
    println!(
        "exported {} entries, {} bytes logical",
        compressed.entries().len(),
        compressed.size_bytes()
    );

    // 2. Serialize to disk and load back.
    let path = std::env::temp_dir().join("edkm_model.bin");
    std::fs::write(&path, compressed.to_bytes())?;
    let file_len = std::fs::metadata(&path)?.len();
    println!("wrote {} ({file_len} bytes on disk)", path.display());
    let loaded = CompressedModel::from_bytes(&std::fs::read(&path)?)?;
    println!("loaded back: {} entries", loaded.entries().len());

    // 3. Rebuild the served decoder from the shipped artifact: every
    //    projection runs straight from its palette (LUT-GEMM), nothing is
    //    decompressed to dense weights.
    let served = PalettizedModel::from_compressed(&loaded, cfg)?;
    println!(
        "\nserving {} bytes of palettized decoder (bf16 was {})",
        served.size_bytes(),
        model.native_size_bytes()
    );

    // 4. Hand the model to a streaming engine and consume tokens as they
    //    are produced — the handle is the whole client API.
    let engine = ServeEngine::new(served, EngineConfig::default());
    let handle = engine.handle();
    let (id, mut stream) = handle
        .submit(
            Request::new(vec![1, 5, 2, 9])
                .max_new_tokens(12)
                .sampling(SamplingConfig::with_top_k(0.8, 8, 42)),
        )
        .expect("engine accepts the request");
    print!("{id} tokens:");
    let mut response = None;
    while let Some(ev) = stream.next_event() {
        match ev {
            TokenEvent::Token { token, .. } => print!(" {token}"),
            TokenEvent::Finished(r) => response = Some(r),
        }
    }
    let response = response.expect("terminal event");
    println!(
        "\nfinished: {:?}, {} generated, full sequence {:?}",
        response.finish, response.generated, response.tokens
    );
    engine.shutdown();

    std::fs::remove_file(&path).ok();
    Ok(())
}
