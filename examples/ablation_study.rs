//! Run the Table 2 ablation (M / U / S) interactively at a chosen scale and
//! print memory, traffic, and simulated-runtime breakdowns.
//!
//! Run with `cargo run --release --example ablation_study [d_model]`.

use edkm::core::{render_table2, run_table2, AblationSetup};

fn main() {
    let d_model: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(256);
    let setup = AblationSetup {
        d_model,
        n_heads: 8,
        seq: 16,
        batch: 1,
        bits: 3,
        cluster_dim: 1,
        dkm_iters: 3,
        overlap_pcie: false,
    };
    println!(
        "ablating one attention layer: d_model={}, 4 projections x {} weights, 3-bit DKM\n",
        setup.d_model,
        setup.d_model * setup.d_model
    );
    let rows = run_table2(&setup, 8);
    println!("{}", render_table2(&rows));

    println!("traffic and hook behaviour per configuration:");
    for r in &rows {
        println!(
            "  {:<6} d2h {:>10} B   h2d {:>10} B   saves {:>3} ({} deduplicated)",
            r.label,
            r.d2h_bytes,
            r.h2d_bytes,
            r.stats.packs,
            r.stats.direct_hits + r.stats.walk_hits,
        );
    }
    let base = &rows[0];
    let full = rows.last().expect("five rows");
    println!(
        "\ncombined effect: {:.2} MB -> {:.2} MB ({:.1}x) with {:+.1}% simulated runtime",
        base.memory_mb(),
        full.memory_mb(),
        base.peak_cpu_bytes as f64 / full.peak_cpu_bytes.max(1) as f64,
        100.0 * (full.sim_seconds - base.sim_seconds) / base.sim_seconds.max(1e-12),
    );
    println!("(paper at LLaMA-7B scale: 1600 MB -> 12 MB, 129.9x, with a 1.7x slowdown)");
}
