//! Sub-3-bit compression with vector (multi-dimensional) DKM — the
//! extension direction of the original DKM paper, applied to the eDKM
//! pipeline: clustering `d`-element weight blocks with a `2^bits`-entry
//! palette spends `bits/d` index bits per weight, reaching below the
//! paper's 3-bit headline point.
//!
//! The demo sweeps scalar and vector configurations over a pretrained
//! mini-LLaMA, reporting effective bits/weight, exported size (packed and
//! entropy-coded), perplexity, and whether the train-time attention maps
//! still uniquify (the wide/u32 path with its adaptive dense fallback).
//!
//! Run with `cargo run --release --example sub_bit_palettization`.

use edkm::core::{CompressSpec, CompressionPipeline, EdkmConfig};
use edkm::data::{Corpus, Grammar};
use edkm::eval::perplexity;
use edkm::nn::{AdamWConfig, LlamaConfig, LlamaModel, LmBatch, TrainConfig, Trainer};
use edkm::tensor::{DType, Device};

fn main() {
    let cfg = LlamaConfig {
        vocab: 64,
        d_model: 64,
        n_heads: 4,
        n_layers: 2,
        d_ff: 128,
        max_seq: 33,
    };
    let grammar = Grammar::default_with_seed(0);
    let corpus = Corpus::generate(&grammar, 200, 10, 32, 1);

    println!("pretraining the base model...");
    let base = LlamaModel::new(cfg, DType::Bf16, Device::Cpu, 0);
    let params = base.params();
    let mut trainer = Trainer::new(TrainConfig {
        optim: AdamWConfig {
            lr: 3e-3,
            ..AdamWConfig::default()
        },
        ..TrainConfig::default()
    });
    let batches: Vec<LmBatch> = corpus.batches(8).into_iter().map(LmBatch::new).collect();
    for step in 0..150 {
        trainer.step(&base, &batches[step % batches.len()], &params, None);
    }
    let held_out = corpus.subsample(23);
    let base_ppl = perplexity(&base, held_out.windows());
    println!(
        "base: ppl {:.2}, {} bytes bf16\n",
        base_ppl,
        base.native_size_bytes()
    );

    println!(
        "{:<14} {:>6} {:>12} {:>11} {:>12} {:>8}",
        "config", "k", "bits/weight", "packed B", "entropy B", "ppl"
    );
    // (bits, dim): scalar paper points, then vector sub-bit points.
    for (bits, dim) in [(4u8, 1usize), (3, 1), (2, 1), (4, 2), (3, 2), (4, 4)] {
        let mut spec = if dim > 1 {
            CompressSpec::vector(bits, dim)
        } else {
            CompressSpec::with_bits(bits)
        };
        spec.epochs = 1;
        spec.edkm = EdkmConfig::full(8);
        spec.dkm.iters = 4;
        spec.train.optim.lr = 3e-4;

        let target = LlamaModel::new(cfg, DType::Bf16, Device::Cpu, 1);
        target.copy_weights_from(&base);
        let fine_tune: Vec<LmBatch> = (0..20)
            .map(|i| LmBatch::new(corpus.batches(4)[i % corpus.batches(4).len()].clone()))
            .collect();
        let result =
            CompressionPipeline::new(spec.clone()).fine_tune_and_compress(&target, &fine_tune);
        let shipped = LlamaModel::new(cfg, DType::Bf16, Device::Cpu, 2);
        shipped.copy_weights_from(&base);
        result.compressed.apply_to(&shipped);
        let ppl = perplexity(&shipped, held_out.windows());
        println!(
            "{:<14} {:>6} {:>12.2} {:>11} {:>12} {:>8.2}",
            format!("{}b x d{}", bits, dim),
            spec.dkm.k(),
            spec.dkm.effective_bits_per_weight(),
            result.compressed.size_bytes(),
            result.compressed.entropy_size_bytes(),
            ppl
        );
    }

    println!(
        "\nreading the sweep: vector palettes (d>1) unlock operating points\n\
         below what scalar clustering can express (1.5 and 1.0 bits/weight\n\
         here), at a graceful perplexity cost. At equal bits/weight the\n\
         vector-vs-scalar winner depends on cross-weight correlation — at\n\
         LLaMA scale the DKM paper found d>1 ahead; at this toy scale the\n\
         scalar point can still edge it out. The size column is the hard\n\
         guarantee: bytes track bits/weight exactly."
    );
}
