//! The paper's Section 3 training setup at example scale: fully
//! synchronous data-parallel learners (the paper uses 8×A100 under FSDP)
//! fine-tuning under DKM clustering with the full eDKM hooks — saved
//! tensors offloaded, marshaled, uniquified and sharded across the same
//! learner group that carries the gradients.
//!
//! Two invariants drive the demo:
//!   1. data-parallel training is *exact*: per-step losses equal a
//!      single-process run on the full batch;
//!   2. per-learner saved-tensor memory shrinks as the group grows, while
//!      all-gather traffic (the runtime cost Table 2 charges) rises.
//!
//! Run with `cargo run --release --example distributed_training`.

use edkm::autograd::{push_hooks, SavedTensorHooks};
use edkm::core::{DkmConfig, DkmLayer, EdkmConfig, EdkmHooks};
use edkm::data::{Corpus, Grammar};
use edkm::dist::{DataParallelTrainer, LearnerGroup};
use edkm::nn::{AdamWConfig, LlamaConfig, LlamaModel, LmBatch, TrainConfig, Trainer};
use edkm::tensor::{runtime, DType, Device};
use std::collections::HashSet;
use std::sync::Arc;

fn main() {
    let cfg = LlamaConfig {
        vocab: 64,
        d_model: 64,
        n_heads: 4,
        n_layers: 2,
        d_ff: 128,
        max_seq: 17,
    };
    let grammar = Grammar::default_with_seed(0);
    let corpus = Corpus::generate(&grammar, 120, 8, 16, 1);
    let batch = LmBatch::new(corpus.batches(8)[0].clone()); // 8 sequences

    let train_cfg = TrainConfig {
        optim: AdamWConfig {
            lr: 1e-3,
            ..AdamWConfig::default()
        },
        ..TrainConfig::default()
    };

    // 1. Exactness: DP losses match single-process losses step for step.
    println!("-- data-parallel exactness --");
    let single_losses: Vec<f32> = {
        runtime::reset();
        let model = LlamaModel::new(cfg, DType::Bf16, Device::gpu(), 0);
        let params = model.params();
        let mut t = Trainer::new(train_cfg);
        (0..5)
            .map(|_| t.step(&model, &batch, &params, None))
            .collect()
    };
    let dp_losses: Vec<f32> = {
        runtime::reset();
        let model = LlamaModel::new(cfg, DType::Bf16, Device::gpu(), 0);
        let params = model.params();
        let mut t = DataParallelTrainer::new(LearnerGroup::new(4), train_cfg);
        (0..5)
            .map(|_| t.step(&model, &batch, &params, None))
            .collect()
    };
    for (i, (a, b)) in single_losses.iter().zip(&dp_losses).enumerate() {
        println!(
            "  step {i}: single {a:.6}  dp(4) {b:.6}  Δ {:.1e}",
            (a - b).abs()
        );
    }

    // 2. Clustered fine-tune under full eDKM, sweeping the learner count.
    //    One step is measured from a single learner's perspective (all
    //    learners are identical in the fully synchronous setup, so this is
    //    Table 2's "per-learner" metric): saved-tensor bytes fall with
    //    |L|, the all-gather at unpack time pays in simulated seconds.
    println!("\n-- eDKM per-learner saved-tensor memory vs |L| (one clustered step) --");
    println!("  |L|   peak CPU (KB)   dedup   sim time (ms)");
    for learners in [1usize, 2, 4, 8] {
        runtime::reset();
        let model = LlamaModel::new(cfg, DType::Bf16, Device::gpu(), 0);
        let params = model.params();
        let clusterable: HashSet<String> = model.clusterable_names().into_iter().collect();
        let mut trainer = Trainer::new(train_cfg);
        let mut ecfg = EdkmConfig::full(learners);
        ecfg.min_shard_elems = 1;
        let hooks = Arc::new(EdkmHooks::new(ecfg));
        let stats = Arc::clone(&hooks);
        runtime::reset_peak(Device::Cpu);
        {
            let _g = push_hooks(hooks as Arc<dyn SavedTensorHooks>);
            let dkm = DkmLayer::new(DkmConfig {
                iters: 2,
                ..DkmConfig::with_bits(3)
            });
            let hook = |name: &str, w: &edkm::autograd::Var| -> edkm::autograd::Var {
                if clusterable.contains(name) {
                    dkm.cluster(w).soft
                } else {
                    w.clone()
                }
            };
            trainer.step(&model, &batch, &params, Some(&hook));
        }
        let s = stats.stats();
        println!(
            "  {:>3}   {:>12.1}   {:>4.0}%   {:>12.3}",
            learners,
            runtime::peak_bytes(Device::Cpu) as f64 / 1024.0,
            s.dedup_rate() * 100.0,
            runtime::sim_seconds() * 1e3
        );
    }
    println!("\n(the |L| column is Table 2's S effect inside a real training step:");
    println!(" sharding divides the per-learner index lists, the all-gather at");
    println!(" unpack time pays for it in simulated seconds)");
}
