//! Allocation-free decode steady state: once the scheduler has run one
//! step of a given flight shape, every later step of that shape draws all
//! of its forward temporaries (hidden states, Q/K/V, attention context,
//! activation-LUT tables, logits) from the scheduler's [`ScratchArena`]
//! without allocating — pinned via the arena's `grows` checkout counter,
//! and surfaced through the engine's `StatsSnapshot`.

use edkm::core::engine::{EngineConfig, Request, ServeEngine};
use edkm::core::{CompressSpec, PalettizedModel, SamplingConfig, Scheduler, ServeRequest};
use edkm::nn::{LlamaConfig, LlamaModel};
use edkm::tensor::{runtime, DType, Device};

fn served() -> PalettizedModel {
    let cfg = LlamaConfig {
        max_seq: 64,
        ..LlamaConfig::tiny()
    };
    let dense = LlamaModel::new(cfg, DType::Bf16, Device::Cpu, 7);
    let mut spec = CompressSpec::with_bits(3);
    spec.dkm.iters = 2;
    PalettizedModel::from_dense(&dense, &spec).unwrap()
}

#[test]
fn steady_state_decode_steps_do_not_grow_the_arena() {
    runtime::reset();
    let model = served();
    let mut sched = Scheduler::new(&model, 4);
    // Four same-shaped requests with budgets long enough that the flight
    // stays constant through the measurement window.
    for id in 0..4u64 {
        sched.submit(ServeRequest::new(
            id,
            vec![1 + id as usize, 2, 3],
            40,
            SamplingConfig::greedy(),
        ));
    }
    // Warmup: the prefill step plus a few decode steps to touch every
    // buffer shape (the decode flight is 4 one-token chunks every step).
    for _ in 0..4 {
        sched.step();
    }
    let warm_grows = sched.scratch().grows();
    let warm_checkouts = sched.scratch().checkouts();
    assert!(warm_grows > 0, "warmup must have populated the arena");

    // Measurement window: 20 more decode steps of the same flight shape.
    for _ in 0..20 {
        sched.step();
    }
    assert!(
        sched.scratch().checkouts() > warm_checkouts,
        "the window must actually have exercised the arena"
    );
    assert_eq!(
        sched.scratch().grows(),
        warm_grows,
        "steady-state decode must perform zero arena growth"
    );
    assert_eq!(sched.active(), 4, "flight must have stayed constant");
    sched.run_to_completion();
}

#[test]
fn engine_stats_expose_the_scratch_counters() {
    runtime::reset();
    let engine = ServeEngine::new(served(), EngineConfig::default());
    let handle = engine.handle();
    let (_, mut stream) = handle
        .submit(Request::new(vec![1, 2]).max_new_tokens(12))
        .unwrap();
    stream.wait().expect("request finishes");
    let stats = handle.stats();
    assert!(stats.scratch_checkouts > 0, "worker publishes checkouts");
    assert!(
        stats.scratch_grows <= stats.scratch_checkouts,
        "grows is a subset of checkouts"
    );
    engine.shutdown();
}

#[test]
fn retire_and_readmit_reuses_the_warm_arena() {
    runtime::reset();
    let model = served();
    let mut sched = Scheduler::new(&model, 2);
    sched.submit(ServeRequest::new(
        0,
        vec![1, 2, 3],
        10,
        SamplingConfig::greedy(),
    ));
    sched.run_to_completion();
    let grows = sched.scratch().grows();
    // A second, same-shaped request after everything retired: the arena
    // is already warm, so the whole run allocates nothing new.
    sched.submit(ServeRequest::new(
        1,
        vec![4, 5, 6],
        10,
        SamplingConfig::greedy(),
    ));
    sched.run_to_completion();
    assert_eq!(
        sched.scratch().grows(),
        grows,
        "a same-shaped rerun must be served entirely from the warm arena"
    );
}
