//! Allocation-free decode steady state: once the scheduler has run one
//! step of a given flight shape, every later step of that shape draws all
//! of its forward temporaries (hidden states, Q/K/V, attention context,
//! activation-LUT tables, logits) from the scheduler's [`ScratchArena`]
//! without allocating — pinned via the arena's `grows` checkout counter,
//! and surfaced through the engine's `StatsSnapshot`.

use edkm::core::engine::{EngineConfig, Request, ServeEngine};
use edkm::core::{
    CompressSpec, KvBlockConfig, PalettizedModel, SamplingConfig, Scheduler, ServeRequest,
    StepEvents,
};
use edkm::nn::{LlamaConfig, LlamaModel};
use edkm::tensor::{runtime, DType, Device};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

// A counting global allocator so the steady-state contract can be pinned at
// the malloc layer, not just the arena's `grows` counter. Counts are
// thread-local: the hot path under test runs inline on the calling thread
// (the tiny model sits below the kernel's parallel-dispatch threshold), and
// allocations made by *other* concurrently running tests never pollute the
// measurement.
struct CountingAlloc;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

fn allocs_on_this_thread() -> u64 {
    ALLOCS.with(Cell::get)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static COUNTING: CountingAlloc = CountingAlloc;

fn served() -> PalettizedModel {
    let cfg = LlamaConfig {
        max_seq: 64,
        ..LlamaConfig::tiny()
    };
    let dense = LlamaModel::new(cfg, DType::Bf16, Device::Cpu, 7);
    let mut spec = CompressSpec::with_bits(3);
    spec.dkm.iters = 2;
    PalettizedModel::from_dense(&dense, &spec).unwrap()
}

#[test]
fn steady_state_decode_steps_do_not_grow_the_arena() {
    runtime::reset();
    let model = served();
    let mut sched = Scheduler::new(&model, 4);
    // Four same-shaped requests with budgets long enough that the flight
    // stays constant through the measurement window.
    for id in 0..4u64 {
        sched.submit(ServeRequest::new(
            id,
            vec![1 + id as usize, 2, 3],
            40,
            SamplingConfig::greedy(),
        ));
    }
    // Warmup: the prefill step plus a few decode steps to touch every
    // buffer shape (the decode flight is 4 one-token chunks every step).
    for _ in 0..4 {
        sched.step();
    }
    let warm_grows = sched.scratch().grows();
    let warm_checkouts = sched.scratch().checkouts();
    assert!(warm_grows > 0, "warmup must have populated the arena");

    // Measurement window: 20 more decode steps of the same flight shape.
    for _ in 0..20 {
        sched.step();
    }
    assert!(
        sched.scratch().checkouts() > warm_checkouts,
        "the window must actually have exercised the arena"
    );
    assert_eq!(
        sched.scratch().grows(),
        warm_grows,
        "steady-state decode must perform zero arena growth"
    );
    assert_eq!(sched.active(), 4, "flight must have stayed constant");
    sched.run_to_completion();
}

#[test]
fn warm_decode_window_performs_zero_heap_allocations() {
    runtime::reset();
    // 64-token KV blocks: one block holds each request's whole lifetime
    // (3-token prompt + 40 generated), so no block-boundary growth can
    // land inside the measurement window.
    let model = served().with_kv_config(KvBlockConfig {
        block_tokens: 64,
        max_blocks: 0,
    });
    let mut sched = Scheduler::new(&model, 4);
    for id in 0..4u64 {
        sched.submit(ServeRequest::new(
            id,
            vec![1 + id as usize, 2, 3],
            40,
            SamplingConfig::greedy(),
        ));
    }
    // The reusable event buffer the engine's worker loop also uses: after
    // warmup its vecs hold their high-water capacity across `clear()`.
    let mut events = StepEvents::default();
    // Warmup: admission, prefill, and a few decode steps to touch every
    // buffer shape and fill the arena's free lists.
    for _ in 0..6 {
        sched.step_events_into(&mut events);
    }
    // Measurement window: the scheduler side of each step — flat-chunk
    // assembly, forward, sampling, event emission — must be entirely
    // allocation-free, counted at the global-allocator layer.
    let before = allocs_on_this_thread();
    for _ in 0..16 {
        sched.step_events_into(&mut events);
    }
    let window_allocs = allocs_on_this_thread() - before;
    assert_eq!(sched.active(), 4, "flight must have stayed constant");
    assert_eq!(
        window_allocs, 0,
        "warm decode steps must perform zero heap allocations ({window_allocs} counted)"
    );
    sched.run_to_completion();
}

#[test]
fn engine_stats_expose_the_scratch_counters() {
    runtime::reset();
    let engine = ServeEngine::new(served(), EngineConfig::default());
    let handle = engine.handle();
    let (_, mut stream) = handle
        .submit(Request::new(vec![1, 2]).max_new_tokens(12))
        .unwrap();
    stream.wait().expect("request finishes");
    let stats = handle.stats();
    assert!(stats.scratch_checkouts > 0, "worker publishes checkouts");
    assert!(
        stats.scratch_grows <= stats.scratch_checkouts,
        "grows is a subset of checkouts"
    );
    engine.shutdown();
}

#[test]
fn retire_and_readmit_reuses_the_warm_arena() {
    runtime::reset();
    let model = served();
    let mut sched = Scheduler::new(&model, 2);
    sched.submit(ServeRequest::new(
        0,
        vec![1, 2, 3],
        10,
        SamplingConfig::greedy(),
    ));
    sched.run_to_completion();
    let grows = sched.scratch().grows();
    // A second, same-shaped request after everything retired: the arena
    // is already warm, so the whole run allocates nothing new.
    sched.submit(ServeRequest::new(
        1,
        vec![4, 5, 6],
        10,
        SamplingConfig::greedy(),
    ));
    sched.run_to_completion();
    assert_eq!(
        sched.scratch().grows(),
        grows,
        "a same-shaped rerun must be served entirely from the warm arena"
    );
}
