//! Deployment-level end-to-end check: a model that has memorized a pattern
//! keeps generating it after 3-bit eDKM compression — the compressed
//! artifact is a *working language model*, not just a smaller file.

use edkm::core::{CompressSpec, CompressionPipeline, EdkmConfig};
use edkm::nn::{AdamWConfig, LlamaConfig, LlamaModel, LmBatch, TrainConfig, Trainer};
use edkm::tensor::{runtime, DType, Device};

fn cfg() -> LlamaConfig {
    LlamaConfig {
        max_seq: 16, // room for a 3-token prompt + 8 generated tokens
        ..LlamaConfig::tiny()
    }
}

fn pattern_batch() -> LmBatch {
    // A deterministic 4-cycle the tiny model can memorize exactly.
    LmBatch::new(vec![
        vec![1, 2, 3, 4, 1, 2, 3, 4, 1, 2, 3, 4],
        vec![2, 3, 4, 1, 2, 3, 4, 1, 2, 3, 4, 1],
    ])
}

fn memorize() -> LlamaModel {
    let model = LlamaModel::new(cfg(), DType::Bf16, Device::Cpu, 0);
    let params = model.params();
    let mut trainer = Trainer::new(TrainConfig {
        optim: AdamWConfig {
            lr: 5e-3,
            ..AdamWConfig::default()
        },
        ..TrainConfig::default()
    });
    let batch = pattern_batch();
    for _ in 0..120 {
        trainer.step(&model, &batch, &params, None);
    }
    model
}

#[test]
fn compressed_model_still_generates_the_pattern() {
    runtime::reset();
    let base = memorize();
    let continuation = base.generate_greedy(&[1, 2, 3], 8);
    assert_eq!(
        continuation,
        vec![1, 2, 3, 4, 1, 2, 3, 4, 1, 2, 3],
        "base model must have memorized the cycle"
    );

    // Fine-tune-and-compress at 3 bits on the same pattern.
    let mut spec = CompressSpec::with_bits(3);
    spec.epochs = 8;
    spec.edkm = EdkmConfig::full(4);
    spec.dkm.iters = 3;
    spec.tau_anneal = 0.7; // harden assignments toward export
    spec.train.optim.lr = 1e-3;
    let result = CompressionPipeline::new(spec).fine_tune_and_compress(&base, &[pattern_batch()]);

    let shipped = LlamaModel::new(cfg(), DType::Bf16, Device::Cpu, 1);
    result.compressed.apply_to(&shipped);
    let compressed_continuation = shipped.generate_greedy(&[1, 2, 3], 8);
    assert_eq!(
        compressed_continuation,
        vec![1, 2, 3, 4, 1, 2, 3, 4, 1, 2, 3],
        "3-bit compressed model must keep generating the memorized cycle"
    );
    // At this toy scale the per-matrix LUTs and 16-bit norms dominate, so
    // the ratio is well under the ~5x of LLaMA-7B — but it must still be a
    // real reduction.
    assert!(
        result.compressed.size_bytes() < shipped.native_size_bytes() / 2,
        "and it must actually be small: {} vs {}",
        result.compressed.size_bytes(),
        shipped.native_size_bytes()
    );
}

#[test]
fn generation_is_deterministic() {
    runtime::reset();
    let model = memorize();
    let a = model.generate_greedy(&[2, 3], 6);
    let b = model.generate_greedy(&[2, 3], 6);
    assert_eq!(a, b, "greedy decoding must be deterministic");
}
