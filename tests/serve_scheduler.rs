//! Continuous-batching invariants: batching never changes what a request
//! generates, and serving state is accounted like everything else.
//!
//! * With uneven prompt lengths, staggered admission and seeded sampling,
//!   every request produces exactly the tokens it would produce running
//!   alone.
//! * KV-cache bytes live in the device pool while requests are in flight
//!   and return to baseline once all of them retire.

use edkm::core::{
    CompressSpec, FinishReason, Generator, KvBlockConfig, PalettizedModel, Priority,
    SamplingConfig, Scheduler, ServeRequest,
};
use edkm::nn::{LlamaConfig, LlamaModel};
use edkm::tensor::{runtime, DType, Device};

fn served_model(seed: u64) -> PalettizedModel {
    let cfg = LlamaConfig {
        vocab: 32,
        d_model: 16,
        n_heads: 2,
        n_layers: 2,
        d_ff: 32,
        max_seq: 48,
    };
    let dense = LlamaModel::new(cfg, DType::Bf16, Device::Cpu, seed);
    let mut spec = CompressSpec::with_bits(4);
    spec.dkm.iters = 3;
    PalettizedModel::from_dense(&dense, &spec).expect("servable export")
}

fn request_mix() -> Vec<ServeRequest> {
    // Uneven prompt lengths, uneven generation lengths, mixed sampling.
    (0..9u64)
        .map(|id| {
            let plen = 1 + (id as usize * 3) % 7;
            let prompt: Vec<usize> = (0..plen).map(|i| (i * 5 + id as usize) % 32).collect();
            let sampling = match id % 3 {
                0 => SamplingConfig::greedy(),
                1 => SamplingConfig::with_temperature(0.8, 1000 + id),
                _ => SamplingConfig::with_top_k(1.2, 5, 2000 + id),
            };
            ServeRequest::new(id, prompt, 2 + (id as usize * 7) % 11, sampling)
        })
        .collect()
}

#[test]
fn continuous_batching_matches_solo_runs_token_for_token() {
    runtime::reset();
    let model = served_model(7);
    let gen = Generator::new(&model);
    let reqs = request_mix();
    let solo: Vec<Vec<usize>> = reqs
        .iter()
        .map(|r| gen.generate(&r.prompt, r.max_new, &r.sampling))
        .collect();

    // Batch caps below the request count force queueing and staggered
    // admission; every cap must yield identical per-request tokens.
    for max_batch in [1usize, 3, 8] {
        let mut sched = Scheduler::new(&model, max_batch);
        for r in &reqs {
            sched.submit(r.clone());
        }
        let mut out = sched.run_to_completion();
        out.sort_by_key(|r| r.id);
        assert_eq!(out.len(), reqs.len());
        for (resp, want) in out.iter().zip(&solo) {
            assert_eq!(
                &resp.tokens, want,
                "request {} diverged at max_batch {max_batch}",
                resp.id
            );
        }
    }
}

#[test]
fn late_submissions_join_the_running_batch_without_disturbing_it() {
    runtime::reset();
    let model = served_model(8);
    let gen = Generator::new(&model);
    let first = ServeRequest::new(
        0,
        vec![1, 2, 3, 4],
        12,
        SamplingConfig::with_temperature(0.9, 55),
    );
    let late = ServeRequest::new(1, vec![9], 5, SamplingConfig::with_top_k(0.7, 3, 66));
    let solo_first = gen.generate(&first.prompt, first.max_new, &first.sampling);
    let solo_late = gen.generate(&late.prompt, late.max_new, &late.sampling);

    let mut sched = Scheduler::new(&model, 4);
    sched.submit(first.clone());
    // Run a few steps alone, then a new request arrives mid-flight.
    for _ in 0..4 {
        sched.step();
    }
    sched.submit(late.clone());
    let mut out = sched.run_to_completion();
    out.sort_by_key(|r| r.id);
    assert_eq!(out[0].tokens, solo_first, "running request unaffected");
    assert_eq!(out[1].tokens, solo_late, "late joiner decodes identically");
}

#[test]
fn kv_cache_ledger_returns_to_baseline_after_all_requests_retire() {
    runtime::reset();
    let model = served_model(9);
    let baseline = runtime::cpu_live_bytes();
    runtime::reset_peak(Device::Cpu); // ignore the model-building peak
    let mut sched = Scheduler::new(&model, 4);
    for r in request_mix() {
        sched.submit(r);
    }
    sched.step();
    let in_flight = sched.kv_live_bytes();
    assert!(in_flight > 0, "prefills must charge the pool");
    assert_eq!(
        runtime::cpu_live_bytes(),
        baseline + in_flight,
        "pool must carry exactly the in-flight KV bytes between steps"
    );
    sched.run_to_completion();
    assert_eq!(sched.kv_live_bytes(), 0);
    assert_eq!(
        runtime::cpu_live_bytes(),
        baseline,
        "all KV bytes must return to the pool at retirement"
    );
    // Serving left a footprint trace: peak covers the in-flight KV bytes.
    assert!(runtime::peak_bytes(Device::Cpu) >= baseline + in_flight);
}

#[test]
fn batched_decode_shares_steps_across_requests() {
    runtime::reset();
    let model = served_model(10);
    let reqs: Vec<ServeRequest> = (0..4u64)
        .map(|id| ServeRequest::new(id, vec![1 + id as usize], 10, SamplingConfig::greedy()))
        .collect();

    // Sequential: every request decodes alone.
    let mut seq_steps = 0u64;
    for r in &reqs {
        let mut sched = Scheduler::new(&model, 1);
        sched.submit(r.clone());
        sched.run_to_completion();
        seq_steps += sched.decode_steps();
    }
    // Continuous: all four share each batched step.
    let mut sched = Scheduler::new(&model, 4);
    for r in &reqs {
        sched.submit(r.clone());
    }
    sched.run_to_completion();
    assert_eq!(sched.tokens_generated(), 40);
    assert_eq!(
        sched.decode_steps() * 4,
        seq_steps,
        "batch 4 must cover the same tokens in a quarter of the steps"
    );
}

#[test]
fn admission_happens_the_step_after_a_retirement_frees_blocks() {
    // Regression: admission must gate on the *actual* free blocks a prompt
    // needs now — never a worst-case prompt+max_new byte reservation. With
    // a pool sized so that request A's flight leaves too few blocks for
    // B's prompt, B must wait — and be admitted on the very next step once
    // A retires.
    runtime::reset();
    let model = served_model(11).with_kv_config(KvBlockConfig {
        block_tokens: 4,
        max_blocks: 5,
    });
    let gen = Generator::new(&model);
    // A's admission takes ceil(9/4) = 3 of 5 blocks and grows to
    // ceil(16/4) = 4 blocks in flight; B's 8-token prompt needs 3 blocks
    // but at most 2 are free while A runs.
    let a = ServeRequest::new(0, vec![1; 8], 8, SamplingConfig::greedy());
    let b = ServeRequest::new(1, vec![2; 8], 4, SamplingConfig::with_temperature(0.7, 99));
    let solo_b = gen.generate(&b.prompt, b.max_new, &b.sampling);

    let mut sched = Scheduler::new(&model, 4); // batch budget is NOT the gate
    sched.submit(a.clone());
    sched.submit(b.clone());
    let mut a_retired_at = None;
    let mut step = 0u64;
    while a_retired_at.is_none() {
        step += 1;
        let done = sched.step();
        assert!(
            sched.active() <= 1,
            "B must not be admitted while A holds the pool"
        );
        if done.iter().any(|r| r.id == 0) {
            a_retired_at = Some(step);
        }
    }
    assert_eq!(sched.queued(), 1, "B still waiting when A retires");
    sched.step(); // first step after the retirement freed A's blocks
    assert_eq!(sched.active(), 1, "B admitted as soon as blocks freed");
    assert_eq!(sched.queued(), 0);
    let mut out = sched.run_to_completion();
    out.sort_by_key(|r| r.id);
    assert_eq!(out.len(), 1);
    assert_eq!(
        out[0].tokens, solo_b,
        "deferred B generates its solo tokens"
    );
    assert_eq!(model.kv_pool().blocks_in_use(), 0);
    assert_eq!(sched.preemptions(), 0, "deferral needs no preemption here");
}

#[test]
fn stop_token_retires_the_request_and_frees_kv_on_the_same_step() {
    // Regression for stop-token support: the step that samples the stop
    // token must also retire the sequence — its KV blocks are back in the
    // pool before any further forward pass.
    runtime::reset();
    let model = served_model(12);
    let gen = Generator::new(&model);
    let solo = gen.generate_greedy(&[1, 2, 3], 12);
    let stop = solo[5]; // third generated token
    let first_hit = solo[3..].iter().position(|&t| t == stop).unwrap();

    let mut sched = Scheduler::new(&model, 2);
    let mut req = ServeRequest::new(0, vec![1, 2, 3], 12, SamplingConfig::greedy());
    req.stop_tokens = vec![stop];
    sched.submit(req);
    let pool = model.kv_pool();
    let mut finished = Vec::new();
    while finished.is_empty() {
        finished = sched.step();
    }
    let resp = &finished[0];
    assert_eq!(resp.finish, FinishReason::StopToken);
    assert_eq!(resp.generated, first_hit + 1, "cut at the first stop hit");
    assert_eq!(*resp.tokens.last().unwrap(), stop, "stop token is kept");
    assert_eq!(
        &resp.tokens[..resp.tokens.len() - 1],
        &solo[..3 + first_hit],
        "tokens before the stop match the unstopped run"
    );
    assert_eq!(
        pool.blocks_in_use(),
        0,
        "the finishing step must free the KV blocks, not a later one"
    );
    assert_eq!(
        sched.kv_live_bytes(),
        0,
        "no KV bytes linger in the scheduler"
    );
}

#[test]
fn run_to_completion_returns_responses_sorted_by_id() {
    // The ordering contract is documented and pinned: responses come back
    // sorted by request id regardless of submission or completion order.
    runtime::reset();
    let model = served_model(13);
    let mut sched = Scheduler::new(&model, 2);
    for (id, max_new) in [(5u64, 9usize), (1, 2), (3, 6)] {
        sched.submit(ServeRequest::new(
            id,
            vec![1 + id as usize],
            max_new,
            SamplingConfig::greedy(),
        ));
    }
    let out = sched.run_to_completion();
    let ids: Vec<u64> = out.iter().map(|r| r.id).collect();
    assert_eq!(ids, vec![1, 3, 5], "sorted by id, not completion order");
}

#[test]
fn high_priority_requests_are_admitted_ahead_of_fifo_age() {
    runtime::reset();
    let model = served_model(14);
    let mut sched = Scheduler::new(&model, 1); // one slot: admission order is visible
    for (id, priority) in [
        (0u64, Priority::Low),
        (1, Priority::Normal),
        (2, Priority::High),
        (3, Priority::Normal),
    ] {
        let mut req = ServeRequest::new(id, vec![1 + id as usize], 3, SamplingConfig::greedy());
        req.priority = priority;
        sched.submit(req);
    }
    // With equal budgets and one slot, completion order == admission order:
    // High first, then the two Normals FIFO, then Low.
    let mut completion = Vec::new();
    while !sched.is_idle() {
        completion.extend(sched.step().into_iter().map(|r| r.id));
    }
    assert_eq!(completion, vec![2, 1, 3, 0]);
}
