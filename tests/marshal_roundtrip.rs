//! Property-based integration test: packing any view chain built from
//! storage-invariant ops and unpacking it reproduces the tensor bitwise, at
//! no more than one stored copy per underlying storage.

use edkm::autograd::SavedTensorHooks;
use edkm::core::{EdkmConfig, EdkmHooks};
use edkm::tensor::{runtime, DType, Device, Tensor};
use proptest::prelude::*;

/// One storage-invariant transformation step.
#[derive(Debug, Clone, Copy)]
enum Step {
    Transpose,
    Reshape,
    Alias,
    Contiguous,
    SliceHalf,
}

fn apply(t: &Tensor, step: Step) -> Tensor {
    match step {
        Step::Transpose => {
            if t.rank() < 2 {
                t.alias()
            } else {
                t.transpose(0, 1)
            }
        }
        Step::Reshape => {
            let n = t.numel();
            // Alternate between flat and two-row views (both valid for even n).
            if t.rank() == 1 {
                t.reshape(&[2, n / 2])
            } else {
                t.reshape(&[n])
            }
        }
        Step::Alias => t.alias(),
        Step::Contiguous => {
            // Force materialization through a transpose first so the op is
            // not a no-op clone.
            t.transpose(0, t.rank() - 1).contiguous()
        }
        Step::SliceHalf => t.slice(0, 0, t.shape()[0].div_ceil(2)),
    }
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        Just(Step::Transpose),
        Just(Step::Reshape),
        Just(Step::Alias),
        Just(Step::Contiguous),
        Just(Step::SliceHalf),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every tensor in a random invariant-op chain packs and unpacks to
    /// bitwise-identical values under full eDKM hooks.
    #[test]
    fn prop_chain_pack_unpack_bitwise(
        steps in prop::collection::vec(step_strategy(), 0..5),
        seed in any::<u64>(),
    ) {
        runtime::reset();
        let root = Tensor::randn(&[8, 12], DType::F32, Device::gpu(), seed);
        let mut chain = vec![root.clone()];
        for &s in &steps {
            let prev = chain.last().unwrap();
            // Reshape step requires contiguity handled inside Tensor::reshape;
            // SliceHalf requires rank >= 1 (always true).
            chain.push(apply(prev, s));
        }

        let hooks = EdkmHooks::new(EdkmConfig::marshal_only());
        let packed: Vec<_> = chain.iter().map(|t| hooks.pack(t)).collect();
        for (t, p) in chain.iter().zip(&packed) {
            let back = hooks.unpack(p);
            prop_assert_eq!(back.shape(), t.shape());
            prop_assert_eq!(back.to_vec(), t.to_vec(), "values must round-trip bitwise");
            prop_assert_eq!(back.device(), t.device());
        }

        // Dedup bound: at most one stored copy per distinct storage id.
        let distinct: std::collections::HashSet<u64> =
            chain.iter().map(|t| t.storage_id().0).collect();
        let stats = hooks.stats();
        prop_assert!(
            stats.misses <= distinct.len(),
            "stored {} copies for {} distinct storages",
            stats.misses,
            distinct.len()
        );
    }

    /// Gradch-free sanity: with marshaling off, every save is a miss.
    #[test]
    fn prop_no_marshal_never_dedups(seed in any::<u64>()) {
        runtime::reset();
        let t = Tensor::randn(&[4, 4], DType::F32, Device::gpu(), seed);
        let v = t.reshape(&[16]);
        let hooks = EdkmHooks::new(EdkmConfig::baseline());
        let _a = hooks.pack(&t);
        let _b = hooks.pack(&v);
        prop_assert_eq!(hooks.stats().misses, 2);
        prop_assert_eq!(hooks.stats().direct_hits, 0);
    }
}
