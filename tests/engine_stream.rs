//! Streaming-engine contracts:
//!
//! * **Parity** — for a fixed submission order and seeds, the concatenated
//!   `TokenEvent` streams from `ServeEngine` are bit-identical to
//!   `Scheduler::run_to_completion` outputs, at batch 1/4/8, for the
//!   2-way sharded model, and under forced preemption (where replayed
//!   tokens must be emitted exactly once).
//! * **Cancellation** — once `cancel` returns, the request never emits
//!   another token and its KV blocks are already back in the pool.
//! * **Deadlines** — a request past its step budget terminates with
//!   `DeadlineExceeded` and frees its blocks.
//! * **Backpressure** — `try_submit` refuses at `queue_capacity`;
//!   blocking `submit` unblocks when a slot frees.

use edkm::core::{
    CancelOutcome, CompressSpec, EngineConfig, FinishReason, KvBlockConfig, PalettizedModel,
    Priority, Request, SamplingConfig, Scheduler, ServeEngine, ServeRequest, ServeResponse,
    SubmitError, TokenEvent,
};
use edkm::dist::LearnerGroup;
use edkm::nn::{LlamaConfig, LlamaModel};
use edkm::tensor::{runtime, DType, Device};

fn served(seed: u64) -> PalettizedModel {
    let cfg = LlamaConfig {
        vocab: 32,
        d_model: 16,
        n_heads: 2,
        n_layers: 2,
        d_ff: 32,
        max_seq: 48,
    };
    let dense = LlamaModel::new(cfg, DType::Bf16, Device::Cpu, seed);
    let mut spec = CompressSpec::with_bits(3);
    spec.dkm.iters = 3;
    PalettizedModel::from_dense(&dense, &spec).expect("servable export")
}

/// The request mix used by every parity check: uneven prompts and budgets,
/// mixed greedy/temperature/top-k sampling.
fn request_mix() -> Vec<ServeRequest> {
    (0..6u64)
        .map(|id| {
            let plen = 1 + (id as usize * 3) % 5;
            let prompt: Vec<usize> = (0..plen).map(|i| (i * 5 + id as usize) % 32).collect();
            let sampling = match id % 3 {
                0 => SamplingConfig::greedy(),
                1 => SamplingConfig::with_temperature(0.8, 1000 + id),
                _ => SamplingConfig::with_top_k(1.2, 5, 2000 + id),
            };
            ServeRequest::new(id, prompt, 2 + (id as usize * 7) % 9, sampling)
        })
        .collect()
}

/// Submit `reqs` (in order) to an engine over `model`, drain every stream,
/// and return `(streamed_generated_tokens, response)` per request in
/// submission order. Asserts the stream protocol along the way: in-order
/// indices, exactly one terminal event, nothing after it.
fn stream_all<M: edkm::core::ServeModel + 'static>(
    model: M,
    reqs: &[ServeRequest],
    max_batch: usize,
) -> (Vec<(Vec<usize>, ServeResponse)>, edkm::core::StatsSnapshot) {
    let engine = ServeEngine::new(
        model,
        EngineConfig {
            max_batch,
            queue_capacity: reqs.len().max(1),
        },
    );
    let handle = engine.handle();
    let mut streams = Vec::new();
    for r in reqs {
        let request = Request::new(r.prompt.clone())
            .max_new_tokens(r.max_new)
            .sampling(r.sampling)
            .stop_tokens(r.stop_tokens.clone());
        streams.push(handle.submit(request).expect("engine accepts submissions"));
    }
    let mut out = Vec::new();
    for (_, mut stream) in streams {
        let mut tokens = Vec::new();
        let mut response = None;
        while let Some(ev) = stream.next_event() {
            match ev {
                TokenEvent::Token { index, token } => {
                    assert_eq!(index, tokens.len(), "token indices arrive in order");
                    assert!(response.is_none(), "no token after the terminal event");
                    tokens.push(token);
                }
                TokenEvent::Finished(r) => {
                    assert!(response.is_none(), "exactly one terminal event");
                    response = Some(r);
                }
            }
        }
        out.push((tokens, response.expect("stream ends with a terminal event")));
    }
    let stats = handle.stats();
    engine.shutdown();
    (out, stats)
}

/// Engine streams must match `run_to_completion` bit for bit.
fn assert_parity(streamed: &[(Vec<usize>, ServeResponse)], want: &[ServeResponse]) {
    assert_eq!(streamed.len(), want.len());
    for ((tokens, resp), w) in streamed.iter().zip(want) {
        let plen = w.tokens.len() - w.generated;
        assert_eq!(
            tokens,
            &w.tokens[plen..],
            "request {}: streamed tokens diverged from run_to_completion",
            w.id
        );
        assert_eq!(resp.tokens, w.tokens, "request {}: response tokens", w.id);
        assert_eq!(resp.generated, w.generated);
    }
}

#[test]
fn engine_streams_match_run_to_completion_at_batch_1_4_8() {
    runtime::reset();
    let model = served(7);
    let reqs = request_mix();
    let mut sched = Scheduler::new(&model, 4);
    for r in &reqs {
        sched.submit(r.clone());
    }
    let want = sched.run_to_completion(); // sorted by id == submission order
    for max_batch in [1usize, 4, 8] {
        let (streamed, stats) = stream_all(model.clone(), &reqs, max_batch);
        assert_parity(&streamed, &want);
        assert_eq!(
            stats.tokens_generated,
            want.iter().map(|r| r.generated as u64).sum::<u64>()
        );
        assert_eq!(stats.finished, reqs.len() as u64);
        assert_eq!(stats.ttft_steps.total(), reqs.len() as u64);
    }
    assert_eq!(
        model.kv_pool().blocks_in_use(),
        0,
        "engine leaked KV blocks"
    );
}

#[test]
fn engine_streams_match_for_the_sharded_model() {
    runtime::reset();
    let model = served(8);
    let reqs = request_mix();
    let mut sched = Scheduler::new(&model, 4);
    for r in &reqs {
        sched.submit(r.clone());
    }
    let want = sched.run_to_completion();
    let sharded = model.shard(LearnerGroup::new(2));
    let pool = std::sync::Arc::clone(sharded.kv_pool());
    let (streamed, _) = stream_all(sharded, &reqs, 4);
    assert_parity(&streamed, &want);
    assert_eq!(pool.blocks_in_use(), 0);
}

#[test]
fn engine_streams_survive_forced_preemption_without_duplicates() {
    runtime::reset();
    // Same geometry as the scheduler preemption test: two 22-token
    // sequences at 2 tokens/block can never both fit 12 blocks, so the
    // engine must preempt and replay — and each stream must still carry
    // every generated token exactly once, bit-identical to the unbounded
    // run.
    let reqs: Vec<ServeRequest> = (0..2u64)
        .map(|id| {
            ServeRequest::new(
                id,
                vec![1 + id as usize, 5],
                20,
                SamplingConfig::with_top_k(0.9, 4, 40 + id),
            )
        })
        .collect();
    let unbounded = served(9);
    let mut free_sched = Scheduler::new(&unbounded, 2);
    for r in &reqs {
        free_sched.submit(r.clone());
    }
    let want = free_sched.run_to_completion();

    let tight = served(9).with_kv_config(KvBlockConfig {
        block_tokens: 2,
        max_blocks: 12,
    });
    let pool = std::sync::Arc::clone(tight.kv_pool());
    let (streamed, stats) = stream_all(tight, &reqs, 2);
    assert!(stats.preemptions > 0, "the tight pool must preempt");
    assert_parity(&streamed, &want);
    for (tokens, resp) in &streamed {
        assert_eq!(
            tokens.len(),
            resp.generated,
            "replayed tokens must not be re-emitted"
        );
    }
    assert!(streamed
        .iter()
        .any(|(_, r)| r.finish == FinishReason::PreemptedThenFinished));
    assert_eq!(pool.blocks_in_use(), 0);
}

#[test]
fn cancelled_request_emits_nothing_after_cancel_returns_and_frees_blocks() {
    runtime::reset();
    let model = served(10);
    let pool = std::sync::Arc::clone(model.kv_pool());
    let engine = ServeEngine::new(model, EngineConfig::default());
    let handle = engine.handle();
    let (id, mut stream) = handle
        .submit(Request::new(vec![1, 2, 3]).max_new_tokens(40))
        .expect("submit");
    // Let the request actually start decoding.
    let first = stream.next_event().expect("first event");
    assert!(matches!(first, TokenEvent::Token { index: 0, .. }));
    assert!(handle.cancel(id).was_cancelled(), "request was in flight");
    // Cancel is acknowledged by the worker: the KV blocks are already back
    // in the pool, before any further decode step.
    assert_eq!(pool.blocks_in_use(), 0, "cancel must free blocks eagerly");
    // Whatever is still buffered was emitted before cancel returned; the
    // stream ends with the Cancelled terminal and nothing after it.
    let rest: Vec<TokenEvent> = stream.by_ref().collect();
    let last = rest.last().expect("terminal event");
    let TokenEvent::Finished(resp) = last else {
        panic!("stream must end with the terminal event");
    };
    assert_eq!(resp.finish, FinishReason::Cancelled);
    assert!(
        resp.generated < 40,
        "cancellation cut generation short ({} tokens)",
        resp.generated
    );
    // 1 (already consumed) + buffered tokens + terminal = generated + 1.
    assert_eq!(1 + rest.len(), resp.generated + 1);
    assert!(stream.next_event().is_none(), "nothing after the terminal");
    assert_eq!(
        handle.cancel(id),
        CancelOutcome::AlreadyFinished,
        "second cancel finds nothing"
    );
    let stats = handle.stats();
    assert_eq!(stats.cancelled, 1);
    engine.shutdown();
}

/// The pinned contract for cancelling a request that already reached its
/// terminal event: an idempotent no-op with a typed result. However many
/// times (and from however many handle clones) it is repeated, the engine
/// reports [`CancelOutcome::AlreadyFinished`], counts no extra
/// cancellation, and disturbs nothing.
#[test]
fn cancel_after_finish_is_an_idempotent_typed_no_op() {
    runtime::reset();
    let model = served(14);
    let engine = ServeEngine::new(model, EngineConfig::default());
    let handle = engine.handle();
    let (id, mut stream) = handle
        .submit(Request::new(vec![1, 2, 3]).max_new_tokens(4))
        .expect("submit");
    let resp = stream.wait().expect("terminal event");
    assert_eq!(resp.finish, FinishReason::MaxTokens);
    for _ in 0..3 {
        assert_eq!(
            handle.cancel(id),
            CancelOutcome::AlreadyFinished,
            "cancel of a finished request must be a typed no-op"
        );
    }
    // A cloned handle sees the same answer — the contract is engine-wide,
    // not per-handle.
    assert_eq!(engine.handle().cancel(id), CancelOutcome::AlreadyFinished);
    let stats = handle.stats();
    assert_eq!(stats.cancelled, 0, "no phantom cancellations were counted");
    assert_eq!(stats.finished, 1);
    engine.shutdown();
}

#[test]
fn deadline_exceeded_terminates_with_partial_output() {
    runtime::reset();
    let model = served(11);
    let pool = std::sync::Arc::clone(model.kv_pool());
    let engine = ServeEngine::new(model, EngineConfig::default());
    let handle = engine.handle();
    let (_, mut stream) = handle
        .submit(
            Request::new(vec![3, 1, 4])
                .max_new_tokens(40)
                .deadline_steps(2),
        )
        .expect("submit");
    let resp = stream.wait().expect("terminal event");
    assert_eq!(resp.finish, FinishReason::DeadlineExceeded);
    assert!(resp.finish.is_aborted());
    assert!(
        resp.generated <= 2,
        "at most one token per step before the deadline, got {}",
        resp.generated
    );
    assert_eq!(&resp.tokens[..3], &[3, 1, 4], "prompt is preserved");
    let stats = handle.stats();
    assert_eq!(stats.expired, 1);
    assert_eq!(pool.blocks_in_use(), 0);
    engine.shutdown();
}

#[test]
fn try_submit_refuses_at_capacity_and_submit_unblocks() {
    runtime::reset();
    let model = served(12);
    let engine = ServeEngine::new(
        model,
        EngineConfig {
            max_batch: 1,
            queue_capacity: 2,
        },
    );
    let handle = engine.handle();
    let a = handle
        .submit(Request::new(vec![1]).max_new_tokens(30))
        .expect("first fits");
    let b = handle
        .submit(Request::new(vec![2]).max_new_tokens(30))
        .expect("second fits");
    let err = handle
        .try_submit(Request::new(vec![3]).max_new_tokens(1))
        .expect_err("third must be refused");
    assert_eq!(err, SubmitError::Full);
    assert_eq!(handle.in_flight(), 2);
    // Blocking submit parks until a terminal event frees a slot.
    let (_, mut c_stream) = handle
        .submit(Request::new(vec![3]).max_new_tokens(1))
        .expect("blocking submit succeeds once a slot frees");
    let (mut a_stream, mut b_stream) = (a.1, b.1);
    assert!(a_stream.wait().is_some());
    assert!(b_stream.wait().is_some());
    assert!(c_stream.wait().is_some());
    engine.shutdown();
}

#[test]
fn priorities_and_stop_tokens_flow_through_the_engine() {
    runtime::reset();
    let model = served(13);
    // Find greedily generated tokens solo, then stop on the second one.
    let solo = edkm::core::Generator::new(&model).generate_greedy(&[1, 2], 10);
    let stop = solo[3]; // second generated token
    let first_hit = solo[2..].iter().position(|&t| t == stop).unwrap();
    let engine = ServeEngine::new(model, EngineConfig::default());
    let handle = engine.handle();
    let (_, mut stream) = handle
        .submit(
            Request::new(vec![1, 2])
                .max_new_tokens(10)
                .stop_token(stop)
                .priority(Priority::High),
        )
        .expect("submit");
    let resp = stream.wait().expect("terminal");
    assert_eq!(resp.finish, FinishReason::StopToken);
    assert_eq!(resp.generated, first_hit + 1, "cut at the stop token");
    assert_eq!(*resp.tokens.last().unwrap(), stop, "stop token is kept");
    engine.shutdown();
}

#[test]
fn submit_after_shutdown_is_refused() {
    runtime::reset();
    let model = served(14);
    let engine = ServeEngine::new(model, EngineConfig::default());
    let handle = engine.handle();
    engine.shutdown();
    assert_eq!(
        handle
            .submit(Request::new(vec![1]).max_new_tokens(1))
            .expect_err("engine is gone"),
        SubmitError::ShutDown
    );
    assert_eq!(
        handle
            .try_submit(Request::new(vec![1]).max_new_tokens(1))
            .expect_err("engine is gone"),
        SubmitError::ShutDown
    );
}

#[test]
fn concurrent_cancels_of_the_same_request_both_return() {
    // Two handles racing to cancel one request must both come back
    // (no deadlock), and exactly one of them observes the cancellation.
    runtime::reset();
    let model = served(15);
    let engine = ServeEngine::new(model, EngineConfig::default());
    let handle = engine.handle();
    let (id, mut stream) = handle
        .submit(Request::new(vec![1, 2]).max_new_tokens(40))
        .expect("submit");
    let h2 = engine.handle();
    let racer = std::thread::spawn(move || h2.cancel(id));
    let a = handle.cancel(id);
    let b = racer.join().expect("racing cancel returns");
    assert!(
        a.was_cancelled() ^ b.was_cancelled(),
        "exactly one cancel wins, got ({a:?}, {b:?})"
    );
    let resp = stream.wait().expect("terminal event");
    assert_eq!(resp.finish, FinishReason::Cancelled);
    let stats = handle.stats();
    assert_eq!(stats.cancelled, 1, "one cancellation, not two");
    engine.shutdown();
}

#[test]
fn cancelling_a_preempted_request_keeps_its_streamed_tokens() {
    // A preempted request sits requeued with tokens already delivered to
    // its stream; cancelling it there must return a response that still
    // carries those tokens (generated > 0), matching what the caller saw.
    runtime::reset();
    let model = served(16).with_kv_config(KvBlockConfig {
        block_tokens: 2,
        max_blocks: 12,
    });
    let reqs: Vec<ServeRequest> = (0..2u64)
        .map(|id| {
            ServeRequest::new(
                id,
                vec![1 + id as usize, 5],
                20,
                SamplingConfig::with_top_k(0.9, 4, 40 + id),
            )
        })
        .collect();
    let mut sched = Scheduler::new(&model, 2);
    for r in &reqs {
        sched.submit(r.clone());
    }
    // Step until the victim (id 1, the tail admission) is parked in the
    // queue: it ping-pongs admit/preempt while both fit, and stays queued
    // once the survivor's growth leaves fewer free blocks than its prompt
    // needs. Collect everything emitted for it along the way.
    let mut streamed: Vec<usize> = Vec::new();
    let mut finished_in_loop = Vec::new();
    while !(sched.preemptions() > 0 && sched.queued() == 1) {
        assert!(!sched.is_idle(), "tight pool must strand the victim");
        let events = sched.step_events();
        streamed.extend(events.tokens.iter().filter(|t| t.id == 1).map(|t| t.token));
        // The survivor may retire on the very step that strands the
        // victim; the victim itself must still be unresolved.
        assert!(events.finished.iter().all(|r| r.id == 0));
        finished_in_loop.extend(events.finished);
    }
    assert!(!streamed.is_empty(), "the victim streamed tokens first");
    let resp = sched.cancel(1).expect("the queued victim is found");
    assert_eq!(resp.finish, FinishReason::Cancelled);
    assert_eq!(
        resp.generated,
        streamed.len(),
        "terminal response counts the already-streamed tokens"
    );
    assert_eq!(
        &resp.tokens[resp.tokens.len() - streamed.len()..],
        &streamed[..],
        "terminal response carries exactly the streamed tokens"
    );
    // The survivor still drains cleanly and nothing leaks.
    finished_in_loop.extend(sched.run_to_completion());
    assert_eq!(finished_in_loop.len(), 1);
    assert_eq!(finished_in_loop[0].id, 0);
    assert_eq!(model.kv_pool().blocks_in_use(), 0);
}

#[test]
fn recv_timeout_delivers_events_then_reports_typed_ends() {
    use edkm::core::RecvTimeout;
    use std::time::Duration;
    runtime::reset();
    let engine = ServeEngine::new(served(17), EngineConfig::default());
    let handle = engine.handle();

    // Stall the worker long enough that a short wait sees no event: the
    // typed `TimedOut` distinguishes "slow" from "over".
    handle.inject_stall(200);
    let (_, mut stream) = handle
        .submit(
            Request::new(vec![1, 2, 3])
                .max_new_tokens(3)
                .sampling(SamplingConfig::greedy()),
        )
        .expect("submit");
    assert_eq!(
        stream.recv_timeout(Duration::from_millis(5)),
        Err(RecvTimeout::TimedOut),
        "a stalled engine yields nothing within a short deadline"
    );

    // With a generous deadline every event of a live request arrives.
    let mut tokens = 0usize;
    loop {
        match stream.recv_timeout(Duration::from_secs(30)) {
            Ok(TokenEvent::Token { .. }) => tokens += 1,
            Ok(TokenEvent::Finished(resp)) => {
                assert_eq!(resp.generated, 3);
                break;
            }
            Err(e) => panic!("live stream must deliver within the deadline: {e}"),
        }
    }
    assert_eq!(tokens, 3);

    // Past the terminal the stream is over — `Ended`, idempotently, and
    // without waiting out the timeout.
    let t0 = std::time::Instant::now();
    assert_eq!(
        stream.recv_timeout(Duration::from_secs(30)),
        Err(RecvTimeout::Ended)
    );
    assert_eq!(
        stream.recv_timeout(Duration::from_secs(30)),
        Err(RecvTimeout::Ended)
    );
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "a finished stream must report Ended immediately"
    );
    engine.shutdown();
}
