//! Integration test: eDKM is a *memory* optimization — it must not change
//! the math. Gradients of a full model step are bit-identical with and
//! without the hooks, across every Table 2 configuration.

use edkm::autograd::{push_hooks, SavedTensorHooks};
use edkm::core::{DkmConfig, DkmLayer, EdkmConfig, EdkmHooks};
use edkm::nn::{LlamaConfig, LlamaModel};
use edkm::tensor::{runtime, DType, Device};
use std::collections::HashMap;
use std::sync::Arc;

fn grads_of_one_step(config: Option<EdkmConfig>) -> HashMap<String, Vec<f32>> {
    runtime::reset();
    edkm::core::uniquify::clear_annotations();
    let model = LlamaModel::new(LlamaConfig::tiny(), DType::Bf16, Device::gpu(), 3);
    let dkm = DkmLayer::new(DkmConfig {
        iters: 2,
        ..DkmConfig::with_bits(3)
    });
    let clusterable: std::collections::HashSet<String> =
        model.clusterable_names().into_iter().collect();
    let seqs = vec![vec![1usize, 2, 3, 4, 5, 6]];

    let run = |hooks: Option<Arc<EdkmHooks>>| {
        let _guard = hooks.map(|h| push_hooks(h as Arc<dyn SavedTensorHooks>));
        let hook = |name: &str, w: &edkm::autograd::Var| {
            if clusterable.contains(name) {
                dkm.cluster(w).soft
            } else {
                w.clone()
            }
        };
        let loss = model.lm_loss(&seqs, Some(&hook));
        loss.backward();
    };
    run(config.map(|c| Arc::new(EdkmHooks::new(c))));

    model
        .named_params()
        .into_iter()
        .map(|(name, p)| (name, p.grad().map(|g| g.to_vec()).unwrap_or_default()))
        .collect()
}

#[test]
fn every_config_produces_bitwise_identical_gradients() {
    let reference = grads_of_one_step(None);
    for config in [
        EdkmConfig::baseline(),
        EdkmConfig::marshal_only(),
        EdkmConfig::marshal_uniquify(),
        EdkmConfig::marshal_shard(),
        EdkmConfig::full(4),
    ] {
        let got = grads_of_one_step(Some(config));
        assert_eq!(got.len(), reference.len());
        for (name, g) in &reference {
            assert_eq!(
                got.get(name).unwrap(),
                g,
                "gradient of {name} changed under config {}",
                config.label()
            );
        }
    }
}

#[test]
fn hooks_actually_intercepted_the_step() {
    runtime::reset();
    edkm::core::uniquify::clear_annotations();
    let model = LlamaModel::new(LlamaConfig::tiny(), DType::Bf16, Device::gpu(), 3);
    let dkm = DkmLayer::new(DkmConfig::with_bits(3));
    let clusterable: std::collections::HashSet<String> =
        model.clusterable_names().into_iter().collect();
    let hooks = Arc::new(EdkmHooks::new(EdkmConfig::full(4)));
    {
        let _g = push_hooks(Arc::clone(&hooks) as Arc<dyn SavedTensorHooks>);
        let hook = |name: &str, w: &edkm::autograd::Var| {
            if clusterable.contains(name) {
                dkm.cluster(w).soft
            } else {
                w.clone()
            }
        };
        let loss = model.lm_loss(&[vec![1, 2, 3, 4]], Some(&hook));
        loss.backward();
    }
    let s = hooks.stats();
    assert!(s.packs > 20, "a model step saves many tensors: {s:?}");
    assert!(
        s.direct_hits + s.walk_hits > 0,
        "DKM must trigger dedup: {s:?}"
    );
    assert!(s.unpacks > 0, "backward must unpack: {s:?}");
}
