//! Failure injection across crates: simulated device-capacity exhaustion
//! (the paper's motivating constraint — the dense DKM attention map does
//! not fit on real hardware), corrupt serialized artifacts, and API misuse.

use edkm::autograd::SavedTensorHooks;
use edkm::core::pipeline::CompressedTensor;
use edkm::core::{
    AffineQuantized, CompressSpec, CompressedModel, CompressionPipeline, EdkmConfig, EdkmHooks,
    PalettizedTensor,
};
use edkm::nn::{LlamaConfig, LlamaModel, TrainCheckpoint, TrainConfig, Trainer};
use edkm::tensor::{runtime, DType, Device, Tensor};
use proptest::prelude::*;

/// The Table 1 scenario under a CPU budget: the naive offload of a tensor
/// and its view would have OOMed a 5 MB host budget, while marshaling fits.
#[test]
fn naive_offload_blows_budget_marshaling_fits() {
    // Baseline: two independent 4 MB copies against a 5 MB budget.
    runtime::reset();
    runtime::set_device_capacity(Device::Cpu, 5 << 20);
    let x0 = Tensor::rand(&[1024, 1024], DType::F32, Device::gpu(), 0);
    let x1 = x0.reshape(&[1024 * 1024, 1]);
    let hooks = EdkmHooks::new(EdkmConfig::baseline());
    let _p0 = hooks.pack(&x0);
    assert!(runtime::device_fits(Device::Cpu), "first copy fits");
    let _p1 = hooks.pack(&x1);
    assert!(
        !runtime::device_fits(Device::Cpu),
        "duplicate copy must blow the 5 MB budget"
    );
    assert_eq!(runtime::device_oom_events(Device::Cpu), 1);

    // Marshaling: the view is a reference, not a copy.
    runtime::reset();
    runtime::set_device_capacity(Device::Cpu, 5 << 20);
    let x0 = Tensor::rand(&[1024, 1024], DType::F32, Device::gpu(), 0);
    let x1 = x0.reshape(&[1024 * 1024, 1]);
    let hooks = EdkmHooks::new(EdkmConfig::marshal_only());
    let _p0 = hooks.pack(&x0);
    let _p1 = hooks.pack(&x1);
    assert!(
        runtime::device_fits(Device::Cpu),
        "marshaled saves must stay within budget"
    );
}

/// GPU capacity accounting sees the model's own allocations too.
#[test]
fn gpu_budget_flags_oversized_allocations() {
    runtime::reset();
    runtime::set_device_capacity(Device::gpu(), 1 << 20); // 1 MB
    let _t = Tensor::rand(&[1024, 1024], DType::F32, Device::gpu(), 1); // 4 MB
    assert!(!runtime::device_fits(Device::gpu()));
    // CPU budget is independent.
    assert!(runtime::device_fits(Device::Cpu));
}

#[test]
fn corrupted_compressed_model_is_rejected_not_misread() {
    runtime::reset();
    let model = LlamaModel::new(LlamaConfig::tiny(), DType::Bf16, Device::Cpu, 0);
    let mut spec = CompressSpec::with_bits(3);
    spec.dkm.iters = 2;
    let bytes = CompressionPipeline::new(spec).export(&model).to_bytes();

    // Wrong magic.
    let mut bad = bytes.clone();
    bad[0] ^= 0xFF;
    assert!(
        CompressedModel::from_bytes(&bad).is_err(),
        "bad magic must fail"
    );

    // Truncations at every prefix length must error, never panic.
    for cut in [0, 1, 7, 8, 9, bytes.len() / 2, bytes.len() - 1] {
        assert!(
            CompressedModel::from_bytes(&bytes[..cut]).is_err(),
            "truncation at {cut} must fail"
        );
    }

    // The pristine buffer still decodes.
    assert!(CompressedModel::from_bytes(&bytes).is_ok());
}

#[test]
fn corrupted_checkpoint_is_rejected_not_misread() {
    runtime::reset();
    let model = LlamaModel::new(LlamaConfig::tiny(), DType::Bf16, Device::Cpu, 0);
    let trainer = Trainer::new(TrainConfig::default());
    let bytes = TrainCheckpoint::capture(&model, &trainer).to_bytes();
    for cut in [0, 4, 8, 12, bytes.len() / 3, bytes.len() - 1] {
        assert!(
            TrainCheckpoint::from_bytes(&bytes[..cut]).is_err(),
            "truncation at {cut} must fail"
        );
    }
    assert!(TrainCheckpoint::from_bytes(&bytes).is_ok());
}

/// Compressing and applying across models with different architectures is
/// a usage error that must be caught loudly.
#[test]
#[should_panic(expected = "size mismatch")]
fn applying_to_mismatched_architecture_panics() {
    runtime::reset();
    let small = LlamaModel::new(LlamaConfig::tiny(), DType::Bf16, Device::Cpu, 0);
    let mut spec = CompressSpec::with_bits(3);
    spec.dkm.iters = 2;
    let compressed = CompressionPipeline::new(spec).export(&small);

    let mut bigger_cfg = LlamaConfig::tiny();
    bigger_cfg.d_model *= 2;
    bigger_cfg.n_heads *= 2;
    let bigger = LlamaModel::new(bigger_cfg, DType::Bf16, Device::Cpu, 0);
    compressed.apply_to(&bigger);
}

/// An arbitrary synthetic container: one palettized entry at an arbitrary
/// palette size/bit width, one affine entry, one native entry.
fn arbitrary_container(bits: u8, k: usize, rows: usize, cols: usize, seed: u64) -> CompressedModel {
    let w = Tensor::randn(&[rows, cols], DType::F32, Device::Cpu, seed);
    let centroids = Tensor::randn(&[k, 1], DType::F32, Device::Cpu, seed ^ 0xABCD);
    let pal = PalettizedTensor::from_nearest(&w, &centroids, bits, 1);
    let e = Tensor::randn(&[rows, cols], DType::F32, Device::Cpu, seed ^ 0x1234);
    let aff = AffineQuantized::encode(&e, 1 + (bits % 8));
    let norm = Tensor::randn(&[cols], DType::Bf16, Device::Cpu, seed ^ 0x77);
    CompressedModel::from_entries(vec![
        ("proj".into(), CompressedTensor::Palettized(pal)),
        ("embed".into(), CompressedTensor::Affine(aff)),
        (
            "norm".into(),
            CompressedTensor::Native {
                values: norm.to_vec(),
                shape: vec![cols],
            },
        ),
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arbitrary palette sizes and bit widths round-trip the container
    /// exactly: same entry names, decoded values, and accounted sizes.
    #[test]
    fn prop_container_roundtrips_arbitrary_palettes(
        bits in 1u8..=16,
        kf in 0.0f64..1.0,
        rows in 1usize..10,
        cols in 1usize..12,
        seed in any::<u64>(),
    ) {
        runtime::reset();
        let k_max = (1usize << bits).min(64);
        let k = 1 + ((kf * k_max as f64) as usize).min(k_max - 1);
        let m = arbitrary_container(bits, k, rows, cols, seed);
        let back = CompressedModel::from_bytes(&m.to_bytes()).expect("roundtrip");
        prop_assert_eq!(back.entries().len(), m.entries().len());
        for ((n1, e1), (n2, e2)) in m.entries().iter().zip(back.entries()) {
            prop_assert_eq!(n1, n2);
            prop_assert_eq!(e1.decode_values(), e2.decode_values());
            prop_assert_eq!(e1.size_bytes(), e2.size_bytes());
        }
    }

    /// Any truncation yields a typed `DecodeError`, never a panic.
    #[test]
    fn prop_truncation_yields_typed_error(
        cut_f in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        runtime::reset();
        let bytes = arbitrary_container(3, 5, 4, 6, seed).to_bytes();
        let cut = ((cut_f * bytes.len() as f64) as usize).min(bytes.len() - 1);
        prop_assert!(CompressedModel::from_bytes(&bytes[..cut]).is_err());
    }

    /// Any single bit flip yields a typed `DecodeError` (the v2 integrity
    /// trailer catches whatever the structural checks let through), never a
    /// panic and never a silently corrupted model.
    #[test]
    fn prop_bit_flip_yields_typed_error(
        pos_f in 0.0f64..1.0,
        bit in 0u8..8,
        seed in any::<u64>(),
    ) {
        runtime::reset();
        let mut bytes = arbitrary_container(4, 9, 3, 8, seed).to_bytes();
        let pos = ((pos_f * bytes.len() as f64) as usize).min(bytes.len() - 1);
        bytes[pos] ^= 1 << bit;
        prop_assert!(CompressedModel::from_bytes(&bytes).is_err());
    }
}

/// Mid-workload cancel storm: replay a chat trace through the live engine,
/// cancel a seeded-random half of the in-flight streams once tokens are
/// flowing, and require (a) zero leaked KV blocks at drain, (b) every
/// surviving stream bit-identical to an undisturbed run, and (c) every
/// cancelled stream a strict prefix of its undisturbed counterpart.
#[test]
fn cancel_storm_leaks_nothing_and_leaves_survivors_bit_identical() {
    use edkm::core::{
        EngineConfig, FinishReason, PalettizedModel, Request, ServeEngine, TokenEvent,
    };
    use edkm::workload::{replay_engine, EngineReplayConfig, Trace, TraceConfig, TraceKind};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    runtime::reset();
    let cfg = LlamaConfig {
        vocab: 64,
        d_model: 32,
        n_heads: 2,
        n_layers: 2,
        d_ff: 64,
        max_seq: 48,
    };
    let dense = LlamaModel::new(cfg, DType::Bf16, Device::Cpu, 0);
    let mut spec = CompressSpec::with_bits(3);
    spec.dkm.iters = 2;
    let model = PalettizedModel::from_dense(&dense, &spec).expect("servable export");
    let trace = Trace::generate(&TraceConfig::new(
        TraceKind::Chat,
        5,
        12,
        cfg.vocab,
        cfg.max_seq,
    ));

    // Reference: the same trace with nobody pulling the plug.
    let undisturbed = replay_engine(
        model.clone(),
        &trace,
        EngineReplayConfig {
            max_batch: 4,
            queue_capacity: trace.requests().len(),
        },
    );

    // Storm run: submit everything, then cancel a random half mid-flight.
    let engine = ServeEngine::new(
        model,
        EngineConfig {
            max_batch: 4,
            queue_capacity: trace.requests().len(),
        },
    );
    let handle = engine.handle();
    let mut streams = Vec::new();
    for r in trace.requests() {
        let req = Request::new(r.prompt.clone())
            .max_new_tokens(r.max_new)
            .sampling(r.sampling)
            .priority(r.priority);
        let (rid, stream) = handle.submit(req).expect("engine accepts the trace");
        streams.push((r.id, rid, stream));
    }
    let mut rng = StdRng::seed_from_u64(17);
    let mut order: Vec<usize> = (0..streams.len()).collect();
    for i in (1..order.len()).rev() {
        let j = rng.gen_range(0..i + 1);
        order.swap(i, j);
    }
    let victims: Vec<usize> = order[..streams.len() / 2].to_vec();
    let t0 = std::time::Instant::now();
    while handle.stats().tokens_generated == 0 && t0.elapsed().as_secs() < 5 {
        std::thread::yield_now();
    }
    for &v in &victims {
        handle.cancel(streams[v].1);
    }

    let mut outcomes = Vec::new();
    for (trace_id, _, mut stream) in streams {
        let mut resp = None;
        while let Some(ev) = stream.next_event() {
            if let TokenEvent::Finished(r) = ev {
                resp = Some(r);
            }
        }
        outcomes.push((trace_id, resp.expect("terminal event")));
    }
    outcomes.sort_by_key(|(id, _)| *id);

    for ((id, resp), want) in outcomes.iter().zip(&undisturbed.outcomes) {
        assert_eq!(*id, want.id);
        if resp.finish == FinishReason::Cancelled {
            assert!(
                want.tokens.starts_with(&resp.tokens),
                "request {id}: a cancelled stream must be a prefix of the \
                 undisturbed run, got {:?} vs {:?}",
                resp.tokens,
                want.tokens
            );
        } else {
            assert_eq!(
                resp.tokens, want.tokens,
                "request {id}: a stream that survived the cancel storm must \
                 be bit-identical to the undisturbed run"
            );
        }
    }

    let stats = handle.stats();
    engine.shutdown();
    assert_eq!(stats.kv_live_bytes, 0, "cancel storm leaked KV blocks");
    assert_eq!(
        stats.finished + stats.cancelled + stats.expired,
        stats.submitted,
        "retirement classes must partition submissions after the storm"
    );
}

/// Kill one replica of a three-replica fleet mid-replay. No request may be
/// lost and no token duplicated: every stream — including those that were
/// in flight on the dead engine and failed over — must deliver strictly
/// consecutive token indices, finish naturally, and match an undisturbed
/// single-engine run bit for bit (sampling is per-request-seeded, so a
/// re-dispatched request regenerates the same tokens). The dead replica's
/// block ledger must audit to zero.
#[test]
fn killed_replica_mid_replay_loses_no_request_and_leaks_no_block() {
    use edkm::cluster::{Cluster, ClusterConfig, ReplicaState};
    use edkm::core::{
        EngineConfig, KvBlockConfig, PalettizedModel, Request, SamplingConfig, ServeEngine,
        TokenEvent,
    };
    use edkm::workload::{Trace, TraceConfig, TraceKind};

    runtime::reset();
    let cfg = LlamaConfig {
        vocab: 64,
        d_model: 32,
        n_heads: 2,
        n_layers: 2,
        d_ff: 64,
        max_seq: 48,
    };
    let dense = LlamaModel::new(cfg, DType::Bf16, Device::Cpu, 0);
    let mut spec = CompressSpec::with_bits(3);
    spec.dkm.iters = 2;
    let model = PalettizedModel::from_dense(&dense, &spec).expect("servable export");
    let trace = Trace::generate(&TraceConfig::new(
        TraceKind::Chat,
        5,
        12,
        cfg.vocab,
        cfg.max_seq,
    ));
    let kv = KvBlockConfig {
        block_tokens: 4,
        max_blocks: 0,
    };

    // Nine long "anchor" requests (load-aware dispatch spreads them ~3 per
    // replica) keep every engine busy for ~hundreds of decode steps, so
    // the kill below can catch replica 0 with work in flight — the short
    // chat requests alone drain too fast to kill reliably.
    let mut requests: Vec<Request> = (0..9u64)
        .map(|i| {
            Request::new(vec![1 + i as usize])
                .max_new_tokens(cfg.max_seq - 1)
                .sampling(SamplingConfig::with_top_k(0.8, 8, 1000 + i))
        })
        .collect();
    for r in trace.requests() {
        requests.push(
            Request::new(r.prompt.clone())
                .max_new_tokens(r.max_new)
                .sampling(r.sampling)
                .priority(r.priority),
        );
    }
    let engine_cfg = EngineConfig {
        max_batch: 4,
        queue_capacity: requests.len(),
    };

    // Reference: the same requests on one engine, nobody pulling the plug.
    let reference: Vec<Vec<usize>> = {
        let engine = ServeEngine::new(model.clone().with_kv_config(kv), engine_cfg);
        let handle = engine.handle();
        let streams: Vec<_> = requests
            .iter()
            .map(|r| handle.submit(r.clone()).expect("engine accepts").1)
            .collect();
        let tokens = streams
            .into_iter()
            .map(|mut s| s.wait().expect("finishes").tokens)
            .collect();
        engine.shutdown();
        tokens
    };

    // The kill-window race is real: on a loaded machine the fleet can
    // drain the whole request set before this thread lands the kill. The
    // correctness assertions (bit-identical tokens, exact-once indices,
    // zero-leak ledger) hold on every attempt; only catching the fleet
    // mid-flight (`rerouted >= 1`) may need another try.
    let mut rerouted = 0u64;
    for _attempt in 0..5 {
        // No prefix cache on the fleet: the radix index retains blocks
        // past retirement (they count in `blocks_in_use`), which would
        // mask the zero-leak audit on the dead replica's ledger.
        let fleet: Vec<PalettizedModel> =
            (0..3).map(|_| model.clone().with_kv_config(kv)).collect();
        let mut cluster = Cluster::new(
            fleet,
            ClusterConfig {
                engine: engine_cfg,
                ..ClusterConfig::default()
            },
        );
        let router = cluster.handle();
        let mut streams = Vec::new();
        for (pos, req) in requests.iter().enumerate() {
            let (rid, stream) = router
                .submit(req.clone())
                .expect("router accepts the trace");
            streams.push((pos, rid, stream));
        }

        // Yank replica 0 once it has emitted tokens with work still in
        // flight (its anchors alone run for ~hundreds of steps).
        let t0 = std::time::Instant::now();
        loop {
            let stats = router.stats();
            let (_, r0) = &stats.replicas[0];
            let in_flight = r0.submitted - r0.finished - r0.cancelled - r0.expired;
            if (r0.tokens_generated > 0 && in_flight > 0) || t0.elapsed().as_secs() >= 5 {
                break;
            }
            std::thread::yield_now();
        }
        cluster.kill(0);
        assert_eq!(cluster.replica_state(0), ReplicaState::Dead);

        let mut outcomes = Vec::new();
        for (pos, _rid, mut stream) in streams {
            let mut next = 0usize;
            let mut resp = None;
            while let Some(ev) = stream.next_event() {
                match ev {
                    TokenEvent::Token { index, .. } => {
                        assert_eq!(
                            index, next,
                            "request {pos}: failover must neither duplicate \
                             nor skip a token index"
                        );
                        next += 1;
                    }
                    TokenEvent::Finished(r) => {
                        assert!(resp.is_none(), "exactly one terminal event per stream");
                        resp = Some(r);
                    }
                }
            }
            outcomes.push((pos, resp.expect("every request survives the kill")));
        }

        for (pos, resp) in &outcomes {
            assert!(
                !resp.finish.is_aborted(),
                "request {pos}: a kill must re-dispatch, not abort ({:?})",
                resp.finish
            );
            assert_eq!(
                resp.tokens, reference[*pos],
                "request {pos}: tokens after failover must be bit-identical \
                 to the undisturbed run"
            );
        }

        assert_eq!(
            cluster.pool(0).blocks_in_use(),
            0,
            "dead replica's block ledger must audit to zero"
        );
        rerouted = router.stats().rerouted;
        cluster.shutdown();
        if rerouted >= 1 {
            break;
        }
    }
    assert!(
        rerouted >= 1,
        "killing a replica with tokens flowing must re-dispatch something \
         in at least one of five attempts"
    );
}

/// Budgets reset with the runtime: a fresh runtime has no capacity and no
/// stale OOM events.
#[test]
fn reset_clears_capacity_and_oom_state() {
    runtime::reset();
    runtime::set_device_capacity(Device::Cpu, 16);
    let _v = Tensor::rand(&[1024], DType::F32, Device::Cpu, 2);
    assert!(!runtime::device_fits(Device::Cpu));
    runtime::reset();
    assert!(runtime::device_fits(Device::Cpu));
    assert_eq!(runtime::device_oom_events(Device::Cpu), 0);
    let _v = Tensor::rand(&[1024], DType::F32, Device::Cpu, 2);
    assert!(
        runtime::device_fits(Device::Cpu),
        "no capacity => unlimited"
    );
}

/// The chaos plan is a pure function of its inputs: regenerating under
/// the same `(profile, seed, replicas, horizon)` must reproduce the exact
/// bytes, and each knob must change them.
#[test]
fn fault_plans_replay_byte_identically() {
    use edkm::chaos::{FaultPlan, FaultProfile};
    for profile in FaultProfile::ALL {
        let a = FaultPlan::generate(profile, 7, 4, 400);
        let b = FaultPlan::generate(profile, 7, 4, 400);
        assert_eq!(a.to_bytes(), b.to_bytes(), "{profile}: bytes must match");
        assert_eq!(a.fingerprint(), b.fingerprint(), "{profile}: fingerprint");
        assert_ne!(
            a.fingerprint(),
            FaultPlan::generate(profile, 8, 4, 400).fingerprint(),
            "{profile}: the seed must matter"
        );
    }
}

/// The acceptance gate of the chaos subsystem: replay one fixed trace
/// under every shipped fault profile with the supervisor closing the
/// loop, and assert the global invariants — no request lost, no
/// duplicate or skipped token index, survivors bit-identical to the
/// undisturbed run, and every KV pool back at its ledger baseline at
/// drain.
#[test]
fn chaos_profiles_preserve_global_invariants() {
    use edkm::chaos::{FaultPlan, FaultProfile};
    use edkm::core::{CompressSpec, KvBlockConfig, PalettizedModel};
    use edkm::workload::{
        audit_invariants, replay_cluster_chaos, ChaosReplayConfig, EngineReplayConfig, Trace,
        TraceConfig, TraceKind,
    };

    runtime::reset();
    let cfg = LlamaConfig {
        vocab: 64,
        d_model: 32,
        n_heads: 2,
        n_layers: 2,
        d_ff: 64,
        max_seq: 48,
    };
    let dense = LlamaModel::new(cfg, DType::Bf16, Device::Cpu, 0);
    let mut spec = CompressSpec::with_bits(3);
    spec.dkm.iters = 2;
    let model = PalettizedModel::from_dense(&dense, &spec).expect("servable export");
    let kv = KvBlockConfig {
        block_tokens: 4,
        max_blocks: 0,
    };
    let trace = Trace::generate(&TraceConfig::new(
        TraceKind::Mixed,
        11,
        16,
        cfg.vocab,
        cfg.max_seq,
    ));

    for profile in FaultProfile::ALL {
        let plan = FaultPlan::generate(profile, 7, 3, 300);
        let report = replay_cluster_chaos(
            |corrupt| {
                if corrupt {
                    Err("bit-flipped container image fails checksum".into())
                } else {
                    Ok(model.clone().with_kv_config(kv))
                }
            },
            3,
            &trace,
            &plan,
            ChaosReplayConfig {
                engine: EngineReplayConfig {
                    max_batch: 4,
                    queue_capacity: 32,
                },
                affinity: true,
                ..ChaosReplayConfig::default()
            },
        );
        assert_eq!(
            report.plan_fingerprint,
            plan.fingerprint(),
            "{profile}: the report pins the plan it actually injected"
        );
        let violations = audit_invariants(&report);
        assert!(
            violations.is_empty(),
            "{profile}: robustness invariants violated: {violations:?}\n\
             faults applied: {:?}",
            report.faults
        );
        assert_eq!(report.requests_lost(), 0, "{profile}: zero lost");
        assert_eq!(report.index_violations, 0, "{profile}: exact-once indices");
        assert!(
            report.survivors_bit_identical,
            "{profile}: survivors must match the undisturbed run"
        );
        assert!(report.pools_at_baseline, "{profile}: ledgers at baseline");
    }
}
