//! Property suite for per-tenant token-bucket admission: under arbitrary
//! interleavings of submissions across tenants,
//!
//! * a tenant's admissions never exceed its burst capacity while the
//!   bucket is not refilling,
//! * one tenant draining its bucket never costs another tenant a single
//!   admission (isolation/fairness),
//! * refill is monotone — a faster refill never admits less — and a
//!   refilled bucket still respects the in-flight cap, whose slots come
//!   back exactly at stream terminals.

use edkm::cluster::{Cluster, ClusterConfig, RouteError, TenantPolicy};
use edkm::core::{CompressSpec, EngineConfig, PalettizedModel, Request, SamplingConfig};
use edkm::nn::{LlamaConfig, LlamaModel};
use edkm::tensor::{DType, Device};
use proptest::prelude::*;
use std::sync::OnceLock;

fn model() -> &'static PalettizedModel {
    static MODEL: OnceLock<PalettizedModel> = OnceLock::new();
    MODEL.get_or_init(|| {
        let cfg = LlamaConfig {
            vocab: 64,
            d_model: 32,
            n_heads: 2,
            n_layers: 2,
            d_ff: 64,
            max_seq: 48,
        };
        let dense = LlamaModel::new(cfg, DType::Bf16, Device::Cpu, 0);
        let mut spec = CompressSpec::with_bits(3);
        spec.dkm.iters = 2;
        PalettizedModel::from_dense(&dense, &spec).expect("servable export")
    })
}

fn cluster_with(policy: TenantPolicy) -> Cluster {
    Cluster::new(
        vec![model().clone()],
        ClusterConfig {
            engine: EngineConfig {
                max_batch: 4,
                queue_capacity: 256,
            },
            tenancy: Some(policy),
            ..ClusterConfig::default()
        },
    )
}

fn tiny_req(salt: usize) -> Request {
    Request::new(vec![1 + salt % 7, 2, 3])
        .max_new_tokens(1)
        .sampling(SamplingConfig::greedy())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Refill off: over any interleaving of two tenants, each tenant is
    /// admitted exactly its burst capacity and refused the rest — and the
    /// counts are independent of the interleaving (isolation). Terminal
    /// releases give back in-flight slots, never bucket tokens.
    #[test]
    fn prop_burst_capacity_binds_per_tenant_under_any_interleaving(
        order_bits in any::<u64>(),
        capacity in 1u64..6,
        extra in 1usize..8,
    ) {
        let per_tenant = capacity as usize + extra;
        let cluster = cluster_with(TenantPolicy {
            max_in_flight: 1024,
            bucket_capacity: capacity as f64,
            refill_per_sec: 0.0,
        });
        let router = cluster.handle();
        let mut remaining = [per_tenant, per_tenant];
        let mut admitted = [0usize, 0usize];
        let mut limited = [0usize, 0usize];
        let mut streams = Vec::new();
        let mut bit = 0u32;
        while remaining[0] > 0 || remaining[1] > 0 {
            // The interleaving comes from the raw draw's bits (the offline
            // proptest shim has no prop_map): arbitrary orderings, fixed
            // per-tenant totals.
            let t = if remaining[0] == 0 {
                1
            } else if remaining[1] == 0 {
                0
            } else {
                ((order_bits >> (bit % 64)) & 1) as usize
            };
            bit += 1;
            remaining[t] -= 1;
            let tenant = ["alpha", "beta"][t];
            match router.submit_for(tenant, tiny_req(bit as usize)) {
                Ok((_, stream)) => {
                    admitted[t] += 1;
                    streams.push(stream);
                }
                Err(RouteError::RateLimited { tenant: who }) => {
                    prop_assert_eq!(who.as_str(), tenant, "refusal names the right tenant");
                    limited[t] += 1;
                }
                Err(e) => panic!("unexpected refusal: {e}"),
            }
        }
        for t in 0..2 {
            prop_assert_eq!(
                admitted[t],
                capacity as usize,
                "tenant {} must be admitted exactly its burst capacity",
                t
            );
            prop_assert_eq!(limited[t], extra, "and refused the overflow");
        }
        for mut s in streams {
            prop_assert!(s.wait().is_some(), "admitted requests finish");
        }
        cluster.shutdown();
    }

    /// Refill monotonicity: the same submission sequence admits at least
    /// as much under a faster refill — and under an effectively instant
    /// refill, everything.
    #[test]
    fn prop_refill_is_monotone_in_rate(
        capacity in 1u64..4,
        total in 4usize..12,
    ) {
        let mut admitted_by_rate = Vec::new();
        for rate in [0.0, 1e12] {
            let cluster = cluster_with(TenantPolicy {
                max_in_flight: 1024,
                bucket_capacity: capacity as f64,
                refill_per_sec: rate,
            });
            let router = cluster.handle();
            let mut admitted = 0usize;
            let mut streams = Vec::new();
            for i in 0..total {
                match router.submit_for("gamma", tiny_req(i)) {
                    Ok((_, stream)) => {
                        admitted += 1;
                        streams.push(stream);
                    }
                    Err(RouteError::RateLimited { .. }) => {}
                    Err(e) => panic!("unexpected refusal: {e}"),
                }
            }
            for mut s in streams {
                prop_assert!(s.wait().is_some());
            }
            cluster.shutdown();
            admitted_by_rate.push(admitted);
        }
        prop_assert_eq!(admitted_by_rate[0], capacity as usize, "no refill: the burst is the cap");
        prop_assert!(
            admitted_by_rate[1] >= admitted_by_rate[0],
            "a faster refill must never admit less ({} < {})",
            admitted_by_rate[1],
            admitted_by_rate[0]
        );
        prop_assert_eq!(
            admitted_by_rate[1], total,
            "an instant refill admits the whole sequence"
        );
    }

    /// The in-flight cap binds while requests run and frees exactly at
    /// stream terminals: `max_in_flight` long requests fill the quota, the
    /// next submission is refused as `TenantSaturated`, and consuming one
    /// terminal re-opens one slot.
    #[test]
    fn prop_in_flight_slots_return_at_terminals(
        max_in_flight in 1usize..4,
        salt in any::<u64>(),
    ) {
        let cluster = cluster_with(TenantPolicy {
            max_in_flight,
            bucket_capacity: 1e6,
            refill_per_sec: 1e12,
        });
        let router = cluster.handle();
        // Long-running requests: decoding dozens of tokens takes orders of
        // magnitude longer than the submissions below.
        let mut streams = Vec::new();
        for i in 0..max_in_flight {
            let req = Request::new(vec![1 + (salt as usize + i) % 7, 2])
                .max_new_tokens(40)
                .sampling(SamplingConfig::greedy());
            match router.submit_for("delta", req) {
                Ok((_, s)) => streams.push(s),
                Err(e) => panic!("quota not reached yet: {e}"),
            }
        }
        match router.submit_for("delta", tiny_req(9)) {
            Err(RouteError::TenantSaturated { tenant }) => {
                prop_assert_eq!(tenant.as_str(), "delta");
            }
            Ok(_) => panic!("quota must bind at max_in_flight"),
            Err(e) => panic!("wrong refusal: {e}"),
        }
        // Consume one terminal: exactly one slot comes back.
        let mut first = streams.remove(0);
        prop_assert!(first.wait().is_some());
        prop_assert!(
            router.submit_for("delta", tiny_req(11)).map(|(_, s)| streams.push(s)).is_ok(),
            "a terminal must release its in-flight slot"
        );
        for mut s in streams {
            prop_assert!(s.wait().is_some());
        }
        cluster.shutdown();
    }
}
