//! Property suite for the launch-layer kernel backends: arbitrary
//! `(out, in, k, batch)` geometries — including off-grid tile/chunk tails
//! and palettes past the product-table cutoff — must produce results
//! **bit-identical** to the single-threaded serial oracle on every
//! registered backend (the scalar-tiled oracle, each fixed lane width, and
//! the GPU-launch simulator). This is the fixed-tree determinism contract:
//! lane width and thread count are performance knobs, never numerics knobs.

use edkm::core::infer::launch;
use edkm::core::palettize::PalettizedTensor;
use edkm::core::scratch::ScratchArena;
use edkm::core::PalettizedLinear;
use edkm::tensor::{DType, Device, Tensor};
use proptest::prelude::*;

fn linear(out: usize, inp: usize, k: usize, seed: u64) -> PalettizedLinear {
    let bits = (usize::BITS - (k - 1).max(1).leading_zeros()).max(1) as u8;
    let w = Tensor::randn(&[out, inp], DType::F32, Device::Cpu, seed).map(|v| v * 0.05);
    let lut: Vec<f32> = (0..k).map(|i| (i as f32 - k as f32 / 2.0) * 0.02).collect();
    let c = Tensor::from_vec(lut, &[k, 1], DType::F32, Device::Cpu);
    PalettizedLinear::new(PalettizedTensor::from_nearest(&w, &c, bits, 1))
}

/// Every registered backend against the serial oracle on one geometry.
fn assert_all_backends_match(lin: &PalettizedLinear, batch: usize, seed: u64) {
    let x = Tensor::randn(&[batch, lin.in_features()], DType::F32, Device::Cpu, seed);
    let want = lin.forward_serial(&x).to_vec();
    let xd = x.to_vec();
    let mut arena = ScratchArena::new();
    let mut got = vec![0.0f32; batch * lin.out_features()];
    for backend in launch::registry() {
        got.iter_mut().for_each(|v| *v = f32::NAN);
        lin.kernel()
            .launch_with(*backend, &xd, batch, &mut got, &mut arena);
        assert_eq!(
            got,
            want,
            "[{} x {}] k={} batch={batch}: backend {} ({} lanes) diverged from the serial oracle",
            lin.out_features(),
            lin.in_features(),
            lin.weights().k(),
            backend.name(),
            backend.lanes()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary geometry: feature counts straddling the tile/chunk grid,
    /// palette sizes from degenerate (k = 1) through multi-bit, batches
    /// from decode-shaped (1) to prefill-shaped.
    #[test]
    fn arbitrary_geometry_is_bit_identical_on_every_backend(
        out in 1usize..70,
        inp in 1usize..90,
        k in 1usize..17,
        batch in 1usize..6,
        seed in 0u64..1000,
    ) {
        let lin = linear(out, inp, k, seed);
        assert_all_backends_match(&lin, batch, seed.wrapping_add(1));
    }

    /// Off-grid tails at lane-width granularity: output rows one past and
    /// one short of every lane width (4/8/16) exercise the fixed
    /// lane-halving tail descent of the vectorized backend.
    #[test]
    fn lane_width_tails_are_bit_identical(
        lane_pow in 2u32..5,   // 4, 8, 16
        delta in 0usize..3,    // rows = L - 1, L, L + 1
        inp in 1usize..50,
        seed in 0u64..1000,
    ) {
        let lanes = 1usize << lane_pow;
        let out = (lanes + delta).saturating_sub(1).max(1);
        let lin = linear(out, inp, 8, seed);
        assert_all_backends_match(&lin, 2, seed.wrapping_add(3));
    }
}

#[test]
fn lossless_u16_palette_is_bit_identical_on_every_backend() {
    // The lossless 2^16-entry palette of a bf16 weight takes the inline
    // u16 index path (no product table); every backend must still match
    // the oracle exactly.
    let w = Tensor::randn(&[37, 53], DType::Bf16, Device::Cpu, 61);
    let p = PalettizedTensor::lossless(&w);
    assert_eq!(p.bits(), 16);
    let lin = PalettizedLinear::new(p);
    assert_all_backends_match(&lin, 4, 67);
}

/// Child half of `invalid_env_backend_warns_and_falls_back`: asserts the
/// resolved default in a process whose environment the parent controls.
/// Ignored in normal runs — the parent spawns it with `--ignored`.
#[test]
#[ignore = "spawned as a subprocess by invalid_env_backend_warns_and_falls_back"]
fn env_fallback_child_reports_default_backend() {
    let b = launch::default_backend();
    assert_eq!(b.name(), "vectorized");
    assert_eq!(b.lanes(), launch::detected_lanes());
}

/// An invalid `EDKM_KERNEL_BACKEND` value must warn on stderr and fall
/// back to the vectorized default instead of failing. The selection is
/// resolved once per process, so the regression test runs the child half
/// above in a subprocess with the variable poisoned.
#[test]
fn invalid_env_backend_warns_and_falls_back() {
    let exe = std::env::current_exe().expect("test binary path");
    let out = std::process::Command::new(exe)
        .args([
            "env_fallback_child_reports_default_backend",
            "--exact",
            "--ignored",
            "--nocapture",
        ])
        .env("EDKM_KERNEL_BACKEND", "bogus-backend")
        .output()
        .expect("spawn child test");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "child must fall back, not fail:\n{stdout}\n{stderr}"
    );
    let all = format!("{stdout}\n{stderr}");
    assert!(
        all.contains("warning: EDKM_KERNEL_BACKEND"),
        "fallback must warn: {all}"
    );
    assert!(
        all.contains("bogus-backend"),
        "warning must name the rejected value: {all}"
    );
}

#[test]
fn worker_count_never_changes_the_bits() {
    // The parallel tile loop assigns `min(cores, n_tiles)` worker threads,
    // each owning whole tiles with one accumulator chain per output
    // element, so the result is independent of how many threads execute
    // it. Sweeping the tile count from 1 (inline, zero extra threads)
    // through many tiles varies the actual worker count on any machine;
    // every configuration must reproduce the serial oracle's bits.
    use edkm::core::infer::kernel::TILE_OUT;
    for n_tiles in [1usize, 2, 3, 8] {
        let out = n_tiles * TILE_OUT;
        let lin = linear(out, 600, 8, 79 + n_tiles as u64);
        let x = Tensor::randn(&[4, 600], DType::F32, Device::Cpu, 83);
        let want = lin.forward_serial(&x).to_vec();
        let xd = x.to_vec();
        let mut arena = ScratchArena::new();
        let mut got = vec![0.0f32; 4 * out];
        for backend in launch::registry() {
            lin.kernel()
                .launch_with(*backend, &xd, 4, &mut got, &mut arena);
            assert_eq!(
                got,
                want,
                "backend {} diverged with {n_tiles} tile(s) in flight",
                backend.name()
            );
        }
    }
}
