//! Serving parity suite: compressed whole-model inference must be faithful
//! to the dense model.
//!
//! * At the 2¹⁶-entry lossless palette (the u16 case — a bf16 model's
//!   distinct values always fit), [`PalettizedModel`] greedy generation is
//!   **token-exact** with dense generation for ≥ 64 steps.
//! * At 3/4-bit palettes, per-step logits of the served model stay within
//!   tolerance of the dense model carrying the same decoded weights (the
//!   regime `generation_parity.rs` pins at the token level).

use edkm::core::{
    CompressSpec, CompressedModel, CompressionPipeline, EdkmConfig, Generator, PalettizedModel,
};
use edkm::nn::{AdamWConfig, LlamaConfig, LlamaModel, LmBatch, TrainConfig, Trainer};
use edkm::tensor::{ops, runtime, DType, Device};

const PARITY_STEPS: usize = 64;

fn cfg() -> LlamaConfig {
    LlamaConfig {
        max_seq: 3 + PARITY_STEPS + 8, // prompt + ≥64 generated tokens
        ..LlamaConfig::tiny()
    }
}

fn pattern_batch() -> LmBatch {
    // A deterministic 4-cycle the tiny model memorizes exactly, giving the
    // greedy argmax a wide margin at every step.
    LmBatch::new(vec![
        vec![1, 2, 3, 4, 1, 2, 3, 4, 1, 2, 3, 4],
        vec![2, 3, 4, 1, 2, 3, 4, 1, 2, 3, 4, 1],
    ])
}

fn memorize() -> LlamaModel {
    let model = LlamaModel::new(cfg(), DType::Bf16, Device::Cpu, 0);
    let params = model.params();
    let mut trainer = Trainer::new(TrainConfig {
        optim: AdamWConfig {
            lr: 5e-3,
            ..AdamWConfig::default()
        },
        ..TrainConfig::default()
    });
    let batch = pattern_batch();
    for _ in 0..120 {
        trainer.step(&model, &batch, &params, None);
    }
    model
}

#[test]
fn lossless_palette_generation_is_token_exact_for_64_steps() {
    runtime::reset();
    let dense = memorize();
    let want = dense.generate_greedy(&[1, 2, 3], PARITY_STEPS);
    assert_eq!(want.len(), 3 + PARITY_STEPS);

    let served = PalettizedModel::from_dense(&dense, &CompressSpec::lossless())
        .expect("lossless export must serve");
    let got = Generator::new(&served).generate_greedy(&[1, 2, 3], PARITY_STEPS);
    assert_eq!(
        got, want,
        "lossless compressed serving must be token-exact with the dense model"
    );

    // The dense KV-cached path agrees with both (bit-identical logits).
    assert_eq!(dense.generate_greedy_kv(&[1, 2, 3], PARITY_STEPS), want);

    // And it still round-trips through the on-disk container losslessly.
    let compressed = CompressionPipeline::new(CompressSpec::lossless()).export(&dense);
    let back = CompressedModel::from_bytes(&compressed.to_bytes()).expect("container roundtrip");
    let reserved = PalettizedModel::from_compressed(&back, cfg()).expect("served from bytes");
    assert_eq!(
        Generator::new(&reserved).generate_greedy(&[1, 2, 3], PARITY_STEPS),
        want,
        "serving from the deserialized artifact must stay token-exact"
    );
}

/// Per-step logits of the served model vs the dense model carrying the same
/// decoded (lossy) weights, teacher-forced along the dense trajectory.
fn assert_per_step_logits_close(bits: u8, tol: f32) {
    runtime::reset();
    let base = memorize();
    // Fine-tune-and-compress as generation_parity.rs does.
    let mut spec = CompressSpec::with_bits(bits);
    spec.epochs = 4;
    spec.edkm = EdkmConfig::full(4);
    spec.dkm.iters = 3;
    spec.tau_anneal = 0.7;
    spec.train.optim.lr = 1e-3;
    let result =
        CompressionPipeline::new(spec.clone()).fine_tune_and_compress(&base, &[pattern_batch()]);

    // Dense reference carrying the decoded weights, at f32 so the LUT
    // centroids are stored exactly (a bf16 store would round them and the
    // comparison would measure dtype rounding, not the serving kernel).
    let shipped = LlamaModel::new(cfg(), DType::F32, Device::Cpu, 1);
    result.compressed.apply_to(&shipped);
    let served =
        PalettizedModel::from_compressed(&result.compressed, cfg()).expect("servable export");

    // Teacher-force the dense greedy trajectory through both models and
    // compare the next-token logits at every step.
    let ids = shipped.generate_greedy(&[1, 2, 3], 24);
    let mut cache = served.new_cache();
    for step in 3..ids.len() {
        let prefix = &ids[..step];
        let dense_logits = shipped.logits(prefix, 1, step, None);
        let dense_row = dense_logits.value().slice(0, step - 1, 1);
        let served_logits = if step == 3 {
            served.prefill(prefix, &mut cache)
        } else {
            served.decode_step(&[ids[step - 1]], std::slice::from_mut(&mut cache))
        };
        let n_rows = served_logits.shape()[0];
        let served_row = served_logits.slice(0, n_rows - 1, 1);
        let scale = ops::l2_norm(&dense_row).max(1e-6);
        let diff = ops::max_abs_diff(&served_row.contiguous(), &dense_row.contiguous());
        assert!(
            diff / scale < tol,
            "{bits}-bit step {step}: logits drifted {diff} (scale {scale})"
        );
    }
}

#[test]
fn three_bit_per_step_logits_stay_within_tolerance() {
    // Same decoded weights, different kernel (LUT-GEMM partial sums vs
    // dense matmul): only accumulation-order noise may remain.
    assert_per_step_logits_close(3, 1e-3);
}

#[test]
fn four_bit_per_step_logits_stay_within_tolerance() {
    assert_per_step_logits_close(4, 1e-3);
}

#[test]
fn three_bit_served_generation_keeps_the_memorized_pattern() {
    runtime::reset();
    let base = memorize();
    let mut spec = CompressSpec::with_bits(3);
    spec.epochs = 8;
    spec.edkm = EdkmConfig::full(4);
    spec.dkm.iters = 3;
    spec.tau_anneal = 0.7;
    spec.train.optim.lr = 1e-3;
    let result = CompressionPipeline::new(spec).fine_tune_and_compress(&base, &[pattern_batch()]);
    let served =
        PalettizedModel::from_compressed(&result.compressed, cfg()).expect("servable export");
    let out = Generator::new(&served).generate_greedy(&[1, 2, 3], 8);
    assert_eq!(
        out,
        vec![1, 2, 3, 4, 1, 2, 3, 4, 1, 2, 3],
        "3-bit compressed serving must keep generating the memorized cycle"
    );
    // Serving really runs from compressed storage: the served artifact is
    // much smaller than the dense bf16 model.
    let dense = LlamaModel::new(cfg(), DType::Bf16, Device::Cpu, 2);
    assert!(served.size_bytes() < dense.native_size_bytes() / 2);
}
