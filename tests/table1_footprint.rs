//! Integration test: exact reproduction of Table 1 of the paper.

use edkm::autograd::SavedTensorHooks;
use edkm::core::{EdkmConfig, EdkmHooks};
use edkm::tensor::{runtime, DType, Device, Tensor};

const MB: usize = 1 << 20;

#[test]
fn table1_without_marshaling_exact_bytes() {
    runtime::reset();
    // line 0: x0 = torch.rand([1024, 1024])  ->  GPU 4, CPU 0
    let x0 = Tensor::rand(&[1024, 1024], DType::F32, Device::gpu(), 42);
    assert_eq!(runtime::gpu_live_bytes(), 4 * MB);
    assert_eq!(runtime::cpu_live_bytes(), 0);

    // line 1: x1 = x0.view(-1, 1)  ->  GPU 4, CPU 0 (views share storage)
    let x1 = x0.reshape(&[1024 * 1024, 1]);
    assert_eq!(runtime::gpu_live_bytes(), 4 * MB);
    assert_eq!(runtime::cpu_live_bytes(), 0);
    assert_eq!(x0.storage_id(), x1.storage_id());

    // line 2: y0 = x0.to('cpu')  ->  GPU 4, CPU 4
    let y0 = x0.to_device(Device::Cpu);
    assert_eq!(runtime::gpu_live_bytes(), 4 * MB);
    assert_eq!(runtime::cpu_live_bytes(), 4 * MB);

    // line 3: y1 = x1.to('cpu')  ->  GPU 4, CPU 8 (duplicate storage!)
    let y1 = x1.to_device(Device::Cpu);
    assert_eq!(runtime::gpu_live_bytes(), 4 * MB);
    assert_eq!(runtime::cpu_live_bytes(), 8 * MB);
    assert_ne!(
        y0.storage_id(),
        y1.storage_id(),
        "cross-device copies cannot share storage — the paper's premise"
    );
}

#[test]
fn table1_with_marshaling_saves_the_duplicate() {
    runtime::reset();
    let x0 = Tensor::rand(&[1024, 1024], DType::F32, Device::gpu(), 42);
    let x1 = x0.reshape(&[1024 * 1024, 1]);

    let hooks = EdkmHooks::new(EdkmConfig::marshal_only());
    let p0 = hooks.pack(&x0);
    assert_eq!(runtime::cpu_live_bytes(), 4 * MB);
    let p1 = hooks.pack(&x1);
    assert_eq!(
        runtime::cpu_live_bytes(),
        4 * MB,
        "marshaling must reuse the existing CPU copy (Fig. 2 (b))"
    );

    // Traffic: exactly one 4 MB device-to-host copy.
    let t = runtime::transfer_snapshot();
    assert_eq!(t.d2h_bytes, 4 * MB);
    assert_eq!(t.d2h_txns, 1);

    // Both views reconstruct exactly, with their own shapes.
    let b0 = hooks.unpack(&p0);
    let b1 = hooks.unpack(&p1);
    assert_eq!(b0.shape(), &[1024, 1024]);
    assert_eq!(b1.shape(), &[1024 * 1024, 1]);
    assert_eq!(b0.to_vec(), x0.to_vec());
    assert_eq!(b1.to_vec(), x1.to_vec());
}

#[test]
fn bf16_tensor_moves_at_two_bytes_per_element() {
    // The paper trains in brainfloat16; device bytes must follow the dtype.
    runtime::reset();
    let x = Tensor::rand(&[1024, 1024], DType::Bf16, Device::gpu(), 1);
    assert_eq!(runtime::gpu_live_bytes(), 2 * MB);
    let _y = x.to_device(Device::Cpu);
    assert_eq!(runtime::cpu_live_bytes(), 2 * MB);
    assert_eq!(runtime::transfer_snapshot().d2h_bytes, 2 * MB);
}
