//! Property tests on the tensor substrate's algebraic laws: layout ops
//! (view/transpose/slice/contiguous), 16-bit dtype encodings, and the
//! kernels the DKM layer leans on. These laws are what the marshaling
//! replay mechanism silently assumes, so they get their own adversarial
//! coverage here.

use edkm::tensor::ops as t;
use edkm::tensor::{dtype, DType, Device, Tensor};
use proptest::prelude::*;

fn tensor_2d(rows: usize, cols: usize, seed: u64) -> Tensor {
    Tensor::randn(&[rows, cols], DType::F32, Device::Cpu, seed)
}

proptest! {
    /// Reshape never reorders data: `to_vec` is invariant.
    #[test]
    fn reshape_preserves_row_major_order(
        rows in 1usize..12,
        cols in 1usize..12,
        seed in 0u64..20,
    ) {
        let a = tensor_2d(rows, cols, seed);
        let flat = a.reshape(&[rows * cols]);
        prop_assert_eq!(a.to_vec(), flat.to_vec());
        let back = flat.reshape(&[rows, cols]);
        prop_assert_eq!(back.shape(), a.shape());
        prop_assert_eq!(back.to_vec(), a.to_vec());
    }

    /// Transposing twice is the identity, and a transposed read matches a
    /// manual index swap.
    #[test]
    fn transpose_involution_and_indexing(
        rows in 1usize..10,
        cols in 1usize..10,
        seed in 0u64..20,
    ) {
        let a = tensor_2d(rows, cols, seed);
        let at = a.transpose(0, 1);
        prop_assert_eq!(at.shape(), &[cols, rows]);
        let att = at.transpose(0, 1);
        prop_assert_eq!(att.to_vec(), a.to_vec());
        let (av, atv) = (a.to_vec(), at.to_vec());
        for r in 0..rows {
            for c in 0..cols {
                prop_assert_eq!(av[r * cols + c], atv[c * rows + r]);
            }
        }
    }

    /// `contiguous` preserves values and is idempotent on storage.
    #[test]
    fn contiguous_preserves_values(
        rows in 1usize..10,
        cols in 1usize..10,
        seed in 0u64..20,
    ) {
        let at = tensor_2d(rows, cols, seed).transpose(0, 1);
        let c = at.contiguous();
        prop_assert!(c.is_contiguous());
        prop_assert_eq!(c.to_vec(), at.to_vec());
        // Already-contiguous tensors share storage instead of copying.
        let c2 = c.contiguous();
        prop_assert_eq!(c2.storage_id(), c.storage_id());
    }

    /// Slicing rows matches the manual row extraction.
    #[test]
    fn slice_matches_manual(
        rows in 2usize..10,
        cols in 1usize..8,
        seed in 0u64..20,
    ) {
        let a = tensor_2d(rows, cols, seed);
        let start = rows / 3;
        let len = (rows - start).clamp(1, 2);
        let s = a.slice(0, start, len);
        prop_assert_eq!(s.shape(), &[len, cols]);
        let av = a.to_vec();
        prop_assert_eq!(s.to_vec(), av[start * cols..(start + len) * cols].to_vec());
    }

    /// bf16 rounding is idempotent and order-preserving, and every rounded
    /// value decodes back to itself bit-exactly.
    #[test]
    fn bf16_round_laws(vals in prop::collection::vec(-1e3f32..1e3, 1..100)) {
        for &v in &vals {
            let r = DType::Bf16.round(v);
            prop_assert_eq!(DType::Bf16.round(r), r, "idempotent");
            let bits = DType::Bf16.encode16(r).unwrap();
            prop_assert_eq!(DType::Bf16.decode16(bits).unwrap(), r, "roundtrip");
            // Rounding moves a value at most one bf16 ulp (2^-8 relative).
            prop_assert!((r - v).abs() <= v.abs() / 128.0 + 1e-30);
        }
        let mut sorted = vals.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let rounded: Vec<f32> = sorted.iter().map(|&v| DType::Bf16.round(v)).collect();
        for w in rounded.windows(2) {
            prop_assert!(w[0] <= w[1], "monotone: {} > {}", w[0], w[1]);
        }
    }

    /// fp16 encode/decode roundtrips for every encodable value.
    #[test]
    fn f16_roundtrip(vals in prop::collection::vec(-6e4f32..6e4, 1..100)) {
        for &v in &vals {
            let r = DType::F16.round(v);
            let bits = dtype::f32_to_f16(r);
            let back = dtype::f16_to_f32(bits);
            prop_assert_eq!(back, r, "fp16 roundtrip of {}", v);
        }
    }

    /// A bf16 tensor exposes exactly its rounded values' bit patterns, and
    /// the pattern population is what uniquification assumes.
    #[test]
    fn bits16_matches_encoding(n in 1usize..200, seed in 0u64..20) {
        let w = Tensor::randn(&[n], DType::Bf16, Device::Cpu, seed);
        let bits = w.bits16().unwrap();
        let vals = w.to_vec();
        prop_assert_eq!(bits.len(), n);
        for (b, v) in bits.iter().zip(&vals) {
            prop_assert_eq!(DType::Bf16.decode16(*b).unwrap(), *v);
        }
    }

    /// matmul agrees with the naive triple loop.
    #[test]
    fn matmul_matches_naive(
        m in 1usize..6,
        k in 1usize..6,
        n in 1usize..6,
        seed in 0u64..10,
    ) {
        let a = tensor_2d(m, k, seed);
        let b = tensor_2d(k, n, seed + 100);
        let c = t::matmul(&a, &b);
        prop_assert_eq!(c.shape(), &[m, n]);
        let (av, bv, cv) = (a.to_vec(), b.to_vec(), c.to_vec());
        for i in 0..m {
            for j in 0..n {
                let want: f32 = (0..k).map(|p| av[i * k + p] * bv[p * n + j]).sum();
                prop_assert!((cv[i * n + j] - want).abs() < 1e-4);
            }
        }
    }

    /// Softmax rows are valid distributions and invariant to a per-row
    /// constant shift.
    #[test]
    fn softmax_laws(rows in 1usize..8, cols in 1usize..8, seed in 0u64..10) {
        let x = tensor_2d(rows, cols, seed);
        let s = t::softmax_lastdim(&x);
        let sv = s.to_vec();
        for r in 0..rows {
            let row = &sv[r * cols..(r + 1) * cols];
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-5, "row {} sums to {}", r, sum);
            prop_assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
        let shifted = t::add_scalar(&x, 3.7);
        prop_assert!(t::allclose(&t::softmax_lastdim(&shifted), &s, 1e-5));
    }

    /// neg_sqdist really is `-‖w_i - c_j‖²`.
    #[test]
    fn neg_sqdist_matches_manual(
        n in 1usize..8,
        k in 1usize..6,
        d in 1usize..4,
        seed in 0u64..10,
    ) {
        let w = tensor_2d(n, d, seed);
        let c = tensor_2d(k, d, seed + 7);
        let out = t::neg_sqdist(&w, &c);
        prop_assert_eq!(out.shape(), &[n, k]);
        let (wv, cv, ov) = (w.to_vec(), c.to_vec(), out.to_vec());
        for i in 0..n {
            for j in 0..k {
                let want: f32 = (0..d)
                    .map(|p| {
                        let diff = wv[i * d + p] - cv[j * d + p];
                        -diff * diff
                    })
                    .sum();
                prop_assert!((ov[i * k + j] - want).abs() < 1e-4);
            }
        }
    }

    /// Chains of storage-invariant ops never change the multiset of values
    /// (the law the marshaling replay relies on).
    #[test]
    fn invariant_op_chains_preserve_values(
        seed in 0u64..30,
        ops in prop::collection::vec(0u8..3, 0..6),
    ) {
        let a = Tensor::randn(&[4, 6], DType::F32, Device::Cpu, seed);
        let mut sorted_orig = a.to_vec();
        sorted_orig.sort_by(|x, y| x.partial_cmp(y).unwrap());
        let mut cur = a;
        for op in ops {
            cur = match op {
                0 => {
                    let n = cur.numel();
                    cur.reshape(&[n])
                }
                1 if cur.rank() == 2 => cur.transpose(0, 1),
                _ => cur.contiguous(),
            };
        }
        let mut got = cur.to_vec();
        got.sort_by(|x, y| x.partial_cmp(y).unwrap());
        prop_assert_eq!(got, sorted_orig);
    }
}
