//! Edge-geometry suite for the tiled LUT-GEMM kernel: every awkward shape
//! (features off the tile/chunk grid, batch 1, degenerate 1-entry
//! palettes, the lossless 2¹⁶-entry palette) must produce **bit-identical**
//! results between `forward_serial` (the single-threaded reference) and
//! `forward_batch` (the cache-blocked tiled kernel), and stay within
//! rounding of a dense matmul over the decoded weights.

use edkm::core::infer::kernel::{IN_CHUNK, PROD_K_MAX, TILE_OUT};
use edkm::core::infer::launch;
use edkm::core::palettize::PalettizedTensor;
use edkm::core::scratch::ScratchArena;
use edkm::core::PalettizedLinear;
use edkm::tensor::{ops, runtime, DType, Device, Tensor};

fn linear(out: usize, inp: usize, k: usize, seed: u64) -> PalettizedLinear {
    let bits = (usize::BITS - (k - 1).max(1).leading_zeros()).max(1) as u8;
    let w = Tensor::randn(&[out, inp], DType::F32, Device::Cpu, seed).map(|v| v * 0.05);
    let lut: Vec<f32> = (0..k).map(|i| (i as f32 - k as f32 / 2.0) * 0.02).collect();
    let c = Tensor::from_vec(lut, &[k, 1], DType::F32, Device::Cpu);
    PalettizedLinear::new(PalettizedTensor::from_nearest(&w, &c, bits, 1))
}

fn assert_serial_tiled_parity(lin: &PalettizedLinear, batch: usize, seed: u64, label: &str) {
    let x = Tensor::randn(&[batch, lin.in_features()], DType::F32, Device::Cpu, seed);
    let serial = lin.forward_serial(&x);
    let tiled = lin.forward_batch(&x);
    assert_eq!(
        serial.to_vec(),
        tiled.to_vec(),
        "{label}: tiled kernel must match the serial reference bit for bit"
    );
    // And both stay within rounding of the dense matmul over the decoded
    // weights (the kernel shares its ascending-j accumulation order).
    let dense = ops::matmul(&x, &lin.weights().decode().t());
    let rel = ops::max_abs_diff(&tiled, &dense) / ops::l2_norm(&dense).max(1e-9);
    assert!(rel < 1e-5, "{label}: drifted from dense matmul: {rel}");
}

#[test]
fn off_grid_feature_counts_are_bit_identical() {
    runtime::reset();
    // One past / one short of the tile and chunk boundaries, plus shapes
    // far off the grid.
    for (out, inp) in [
        (TILE_OUT + 1, IN_CHUNK + 1),
        (TILE_OUT - 1, IN_CHUNK - 1),
        (3 * TILE_OUT + 5, 2 * IN_CHUNK + 13),
        (7, 9),
    ] {
        let lin = linear(out, inp, 8, (out * 31 + inp) as u64);
        assert_serial_tiled_parity(&lin, 4, 1, &format!("[{out}, {inp}]"));
    }
}

#[test]
fn exact_grid_multiples_are_bit_identical() {
    runtime::reset();
    let lin = linear(2 * TILE_OUT, IN_CHUNK, 8, 3);
    for batch in [1usize, 2, 32] {
        assert_serial_tiled_parity(&lin, batch, 5, &format!("exact grid, batch {batch}"));
    }
}

#[test]
fn batch_one_decode_shape_is_bit_identical() {
    runtime::reset();
    // The decode steady-state shape: a single activation row. Large enough
    // that forward_batch takes the tiled path.
    let lin = linear(400, 400, 8, 7);
    assert_serial_tiled_parity(&lin, 1, 9, "batch 1");
}

#[test]
fn one_entry_palette_is_bit_identical() {
    runtime::reset();
    // k = 1: every weight is the same scalar; the GEMM degenerates to a
    // rank-one product and must still agree across paths.
    let lin = linear(70, 90, 1, 11);
    assert_eq!(lin.weights().k(), 1);
    assert_serial_tiled_parity(&lin, 3, 13, "1-entry palette");
}

#[test]
fn lossless_u16_palette_is_bit_identical() {
    runtime::reset();
    // The lossless 2^16 palette of a bf16 weight: k far past PROD_K_MAX,
    // so the kernel takes the u16 inline-multiply path — which must agree
    // with the serial reference bit for bit and decode the weights
    // exactly.
    let w = Tensor::randn(&[150, 120], DType::Bf16, Device::Cpu, 17);
    let p = PalettizedTensor::lossless(&w);
    assert!(p.k() > PROD_K_MAX, "lossless palette is rich: {}", p.k());
    assert_eq!(p.bits(), 16);
    assert_eq!(p.decode().to_vec(), w.to_vec());
    let lin = PalettizedLinear::new(p);
    assert_serial_tiled_parity(&lin, 5, 19, "lossless 2^16 palette");
}

#[test]
fn every_backend_is_bit_identical_on_every_edge_geometry() {
    runtime::reset();
    // The same awkward shapes the serial/tiled parity tests pin, replayed
    // through every registered launch backend (scalar oracle, each fixed
    // lane width, the GPU-launch simulator): all of them must reproduce
    // the serial reference bit for bit.
    let cases: [(usize, usize, usize, usize); 6] = [
        (TILE_OUT + 1, IN_CHUNK + 1, 8, 4),
        (TILE_OUT - 1, IN_CHUNK - 1, 8, 4),
        (3 * TILE_OUT + 5, 2 * IN_CHUNK + 13, 8, 2),
        (7, 9, 8, 3),
        (2 * TILE_OUT, IN_CHUNK, 8, 1),
        (70, 90, 1, 3),
    ];
    let mut arena = ScratchArena::new();
    for (out, inp, k, batch) in cases {
        let lin = linear(out, inp, k, (out * 131 + inp) as u64);
        let x = Tensor::randn(&[batch, inp], DType::F32, Device::Cpu, 41);
        let want = lin.forward_serial(&x).to_vec();
        let xd = x.to_vec();
        let mut got = vec![0.0f32; batch * out];
        for backend in launch::registry() {
            got.iter_mut().for_each(|v| *v = f32::NAN);
            lin.kernel()
                .launch_with(*backend, &xd, batch, &mut got, &mut arena);
            assert_eq!(
                got,
                want,
                "[{out} x {inp}] k={k} batch={batch}: backend {} ({} lanes) diverged",
                backend.name(),
                backend.lanes()
            );
        }
    }
}

#[test]
fn every_backend_handles_the_lossless_u16_palette() {
    runtime::reset();
    let w = Tensor::randn(&[90, 140], DType::Bf16, Device::Cpu, 43);
    let p = PalettizedTensor::lossless(&w);
    assert!(p.k() > PROD_K_MAX);
    let lin = PalettizedLinear::new(p);
    let x = Tensor::randn(&[3, 140], DType::F32, Device::Cpu, 47);
    let want = lin.forward_serial(&x).to_vec();
    let xd = x.to_vec();
    let mut arena = ScratchArena::new();
    let mut got = vec![0.0f32; 3 * 90];
    for backend in launch::registry() {
        got.iter_mut().for_each(|v| *v = f32::NAN);
        lin.kernel()
            .launch_with(*backend, &xd, 3, &mut got, &mut arena);
        assert_eq!(
            got,
            want,
            "lossless palette: backend {} diverged",
            backend.name()
        );
    }
}

#[test]
fn forward_rows_matches_the_tensor_entry_points() {
    runtime::reset();
    // The slice-level arena path the serving decoder drives is the same
    // kernel: identical bits, and warm calls stop allocating.
    let lin = linear(65, 530, 8, 23);
    let n = 3usize;
    let x = Tensor::randn(&[n, 530], DType::F32, Device::Cpu, 29);
    let want = lin.forward_batch(&x).to_vec();
    let xd = x.to_vec();
    let mut arena = ScratchArena::new();
    let mut out = vec![0.0f32; n * 65];
    lin.forward_rows(&xd, n, &mut out, &mut arena);
    assert_eq!(out, want, "forward_rows must match forward_batch");
    let grows = arena.grows();
    for _ in 0..3 {
        lin.forward_rows(&xd, n, &mut out, &mut arena);
    }
    assert_eq!(arena.grows(), grows, "warm forward_rows must not allocate");
}
