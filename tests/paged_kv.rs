//! Paged KV-pool conservation properties: no interleaving of admission,
//! generation and retirement may leak a block or leave a byte charged.
//!
//! * Any submit/step interleaving (bounded and unbounded pools, several
//!   paging granularities) drains to `blocks_in_use() == 0` and the device
//!   ledger back at its baseline, with every request completed at its
//!   requested length.
//! * Tokens are identical to solo generation even when the pool is tight
//!   enough to force deferred admission or preemption.

use edkm::core::{
    CompressSpec, Generator, KvBlockConfig, PalettizedModel, SamplingConfig, Scheduler,
    ServeRequest,
};
use edkm::nn::{LlamaConfig, LlamaModel};
use edkm::tensor::{runtime, DType, Device};
use proptest::prelude::*;

fn served(seed: u64) -> PalettizedModel {
    let cfg = LlamaConfig {
        vocab: 16,
        d_model: 8,
        n_heads: 2,
        n_layers: 2,
        d_ff: 16,
        max_seq: 24,
    };
    let dense = LlamaModel::new(cfg, DType::Bf16, Device::Cpu, seed);
    let mut spec = CompressSpec::with_bits(2);
    spec.dkm.iters = 2;
    PalettizedModel::from_dense(&dense, &spec).expect("servable export")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Zero leaked blocks and a drained ledger for arbitrary interleavings.
    #[test]
    fn prop_no_interleaving_leaks_blocks_or_bytes(
        seed in any::<u64>(),
        block_tokens in prop::sample::select(vec![2usize, 4, 8]),
        max_blocks in prop::sample::select(vec![0usize, 8, 10]),
        max_batch in 1usize..4,
        n_requests in 1usize..5,
    ) {
        runtime::reset();
        let model = served(3).with_kv_config(KvBlockConfig { block_tokens, max_blocks });
        let baseline = runtime::cpu_live_bytes();
        let mix = |i: u64| {
            seed.wrapping_mul(6364136223846793005)
                .wrapping_add(i.wrapping_mul(1442695040888963407))
        };
        let reqs: Vec<ServeRequest> = (0..n_requests as u64)
            .map(|id| {
                let plen = 1 + (mix(id) % 4) as usize;
                let max_new = (mix(id + 100) % 6) as usize; // 0 allowed
                ServeRequest {
                    id,
                    prompt: (0..plen).map(|i| (mix(id + 200) as usize + i) % 16).collect(),
                    max_new,
                    sampling: match mix(id + 300) % 3 {
                        0 => SamplingConfig::greedy(),
                        1 => SamplingConfig::with_temperature(0.8, mix(id + 400)),
                        _ => SamplingConfig::with_top_k(1.1, 3, mix(id + 500)),
                    },
                }
            })
            .collect();
        // The pool must at least fit the largest single request running
        // alone (scheduler contract); 10 tokens max at >= 2 tokens/block
        // fits 8 blocks, so every sampled config above is legal.
        let gen = Generator::new(&model);
        let solo: Vec<Vec<usize>> = reqs
            .iter()
            .map(|r| gen.generate(&r.prompt, r.max_new, &r.sampling))
            .collect();
        prop_assert_eq!(runtime::cpu_live_bytes(), baseline, "generator drained");

        let mut sched = Scheduler::new(&model, max_batch);
        // Interleave submits with 0..3 steps each, then drain.
        let mut out = Vec::new();
        for (i, r) in reqs.iter().enumerate() {
            sched.submit(r.clone());
            for _ in 0..mix(600 + i as u64) % 3 {
                out.extend(sched.step());
            }
        }
        out.extend(sched.run_to_completion());
        out.sort_by_key(|r| r.id);
        prop_assert!(sched.is_idle());
        prop_assert_eq!(out.len(), reqs.len(), "every request completes");
        for (resp, want) in out.iter().zip(&solo) {
            prop_assert_eq!(&resp.tokens, want, "request {} diverged from solo", resp.id);
        }
        prop_assert_eq!(model.kv_pool().blocks_in_use(), 0, "leaked KV blocks");
        prop_assert_eq!(sched.kv_live_bytes(), 0);
        prop_assert_eq!(
            runtime::cpu_live_bytes(),
            baseline,
            "device ledger must return to baseline"
        );
    }
}

#[test]
fn block_count_tracks_flight_and_returns_to_zero() {
    runtime::reset();
    let model = served(4).with_kv_config(KvBlockConfig {
        block_tokens: 2,
        max_blocks: 0,
    });
    let baseline = runtime::cpu_live_bytes();
    let mut sched = Scheduler::new(&model, 4);
    for id in 0..3u64 {
        sched.submit(ServeRequest {
            id,
            prompt: vec![1, 2, 3],
            max_new: 4,
            sampling: SamplingConfig::greedy(),
        });
    }
    sched.step();
    let pool = model.kv_pool();
    assert!(pool.blocks_in_use() > 0, "in-flight sequences hold blocks");
    assert_eq!(
        sched.kv_live_bytes(),
        pool.blocks_in_use() * pool.block_bytes(),
        "scheduler bytes and pool blocks must agree"
    );
    sched.run_to_completion();
    assert_eq!(pool.blocks_in_use(), 0);
    assert_eq!(runtime::cpu_live_bytes(), baseline);
}
