//! Paged KV-pool conservation properties: no interleaving of admission,
//! generation and retirement may leak a block or leave a byte charged.
//!
//! * Any submit/step interleaving (bounded and unbounded pools, several
//!   paging granularities) drains to `blocks_in_use() == 0` and the device
//!   ledger back at its baseline, with every request completed at its
//!   requested length.
//! * Tokens are identical to solo generation even when the pool is tight
//!   enough to force deferred admission or preemption.
//! * Arbitrary submit/cancel/step interleavings (with deadlines mixed in)
//!   leak zero blocks, return the ledger to baseline, and give every
//!   request exactly one terminal outcome; `cancel` frees an in-flight
//!   sequence's blocks before the next decode step.

use edkm::core::{
    CompressSpec, FinishReason, Generator, KvBlockConfig, KvBlockPool, KvCache, PalettizedModel,
    SamplingConfig, Scheduler, ServeRequest,
};
use edkm::nn::{LlamaConfig, LlamaModel};
use edkm::tensor::{runtime, DType, Device};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

fn served(seed: u64) -> PalettizedModel {
    let cfg = LlamaConfig {
        vocab: 16,
        d_model: 8,
        n_heads: 2,
        n_layers: 2,
        d_ff: 16,
        max_seq: 24,
    };
    let dense = LlamaModel::new(cfg, DType::Bf16, Device::Cpu, seed);
    let mut spec = CompressSpec::with_bits(2);
    spec.dkm.iters = 2;
    PalettizedModel::from_dense(&dense, &spec).expect("servable export")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Zero leaked blocks and a drained ledger for arbitrary interleavings.
    #[test]
    fn prop_no_interleaving_leaks_blocks_or_bytes(
        seed in any::<u64>(),
        block_tokens in prop::sample::select(vec![2usize, 4, 8]),
        max_blocks in prop::sample::select(vec![0usize, 8, 10]),
        max_batch in 1usize..4,
        n_requests in 1usize..5,
    ) {
        runtime::reset();
        let model = served(3).with_kv_config(KvBlockConfig { block_tokens, max_blocks });
        let baseline = runtime::cpu_live_bytes();
        let mix = |i: u64| {
            seed.wrapping_mul(6364136223846793005)
                .wrapping_add(i.wrapping_mul(1442695040888963407))
        };
        let reqs: Vec<ServeRequest> = (0..n_requests as u64)
            .map(|id| {
                let plen = 1 + (mix(id) % 4) as usize;
                let max_new = (mix(id + 100) % 6) as usize; // 0 allowed
                ServeRequest::new(
                    id,
                    (0..plen).map(|i| (mix(id + 200) as usize + i) % 16).collect(),
                    max_new,
                    match mix(id + 300) % 3 {
                        0 => SamplingConfig::greedy(),
                        1 => SamplingConfig::with_temperature(0.8, mix(id + 400)),
                        _ => SamplingConfig::with_top_k(1.1, 3, mix(id + 500)),
                    },
                )
            })
            .collect();
        // The pool must at least fit the largest single request running
        // alone (scheduler contract); 10 tokens max at >= 2 tokens/block
        // fits 8 blocks, so every sampled config above is legal.
        let gen = Generator::new(&model);
        let solo: Vec<Vec<usize>> = reqs
            .iter()
            .map(|r| gen.generate(&r.prompt, r.max_new, &r.sampling))
            .collect();
        prop_assert_eq!(runtime::cpu_live_bytes(), baseline, "generator drained");

        let mut sched = Scheduler::new(&model, max_batch);
        // Interleave submits with 0..3 steps each, then drain.
        let mut out = Vec::new();
        for (i, r) in reqs.iter().enumerate() {
            sched.submit(r.clone());
            for _ in 0..mix(600 + i as u64) % 3 {
                out.extend(sched.step());
            }
        }
        out.extend(sched.run_to_completion());
        out.sort_by_key(|r| r.id);
        prop_assert!(sched.is_idle());
        prop_assert_eq!(out.len(), reqs.len(), "every request completes");
        for (resp, want) in out.iter().zip(&solo) {
            prop_assert_eq!(&resp.tokens, want, "request {} diverged from solo", resp.id);
        }
        prop_assert_eq!(model.kv_pool().blocks_in_use(), 0, "leaked KV blocks");
        prop_assert_eq!(sched.kv_live_bytes(), 0);
        prop_assert_eq!(
            runtime::cpu_live_bytes(),
            baseline,
            "device ledger must return to baseline"
        );
    }
}

#[test]
fn block_count_tracks_flight_and_returns_to_zero() {
    runtime::reset();
    let model = served(4).with_kv_config(KvBlockConfig {
        block_tokens: 2,
        max_blocks: 0,
    });
    let baseline = runtime::cpu_live_bytes();
    let mut sched = Scheduler::new(&model, 4);
    for id in 0..3u64 {
        sched.submit(ServeRequest::new(
            id,
            vec![1, 2, 3],
            4,
            SamplingConfig::greedy(),
        ));
    }
    sched.step();
    let pool = model.kv_pool();
    assert!(pool.blocks_in_use() > 0, "in-flight sequences hold blocks");
    assert_eq!(
        sched.kv_live_bytes(),
        pool.blocks_in_use() * pool.block_bytes(),
        "scheduler bytes and pool blocks must agree"
    );
    sched.run_to_completion();
    assert_eq!(pool.blocks_in_use(), 0);
    assert_eq!(runtime::cpu_live_bytes(), baseline);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Any interleaving of submit / cancel / step — with step deadlines in
    /// the mix — leaks zero KV blocks, returns the device ledger to its
    /// baseline, and resolves every request to exactly one terminal
    /// outcome.
    #[test]
    fn prop_submit_cancel_step_interleavings_leak_nothing(
        seed in any::<u64>(),
        block_tokens in prop::sample::select(vec![2usize, 4, 8]),
        max_blocks in prop::sample::select(vec![0usize, 8, 10]),
        max_batch in 1usize..4,
        n_requests in 1usize..6,
    ) {
        runtime::reset();
        let model = served(5).with_kv_config(KvBlockConfig { block_tokens, max_blocks });
        let baseline = runtime::cpu_live_bytes();
        let mix = |i: u64| {
            seed.wrapping_mul(6364136223846793005)
                .wrapping_add(i.wrapping_mul(1442695040888963407))
        };
        let mut sched = Scheduler::new(&model, max_batch);
        let mut terminals = 0usize;
        for id in 0..n_requests as u64 {
            let plen = 1 + (mix(id) % 4) as usize;
            let mut req = ServeRequest::new(
                id,
                (0..plen).map(|i| (mix(id + 200) as usize + i) % 16).collect(),
                (mix(id + 100) % 6) as usize, // 0 allowed
                SamplingConfig::with_temperature(0.8, mix(id + 400)),
            );
            if mix(id + 700) % 3 == 0 {
                req.deadline_steps = Some(mix(id + 800) % 5);
            }
            sched.submit(req);
            for _ in 0..mix(600 + id) % 3 {
                terminals += sched.step().len();
            }
            // Cancel an arbitrary id (possibly unknown, queued, active or
            // already finished) after roughly every other submission.
            if mix(id + 900) % 2 == 0 {
                let victim = mix(id + 1000) % n_requests as u64;
                if let Some(resp) = sched.cancel(victim) {
                    prop_assert_eq!(resp.finish, FinishReason::Cancelled);
                    terminals += 1;
                }
            }
        }
        terminals += sched.run_to_completion().len();
        prop_assert!(sched.is_idle());
        prop_assert_eq!(terminals, n_requests, "every request resolves exactly once");
        prop_assert_eq!(model.kv_pool().blocks_in_use(), 0, "leaked KV blocks");
        prop_assert_eq!(sched.kv_live_bytes(), 0);
        prop_assert_eq!(
            runtime::cpu_live_bytes(),
            baseline,
            "device ledger must return to baseline"
        );
    }
}

#[test]
fn cancel_frees_an_active_sequences_blocks_before_the_next_step() {
    runtime::reset();
    let model = served(6).with_kv_config(KvBlockConfig {
        block_tokens: 2,
        max_blocks: 0,
    });
    let baseline = runtime::cpu_live_bytes();
    let mut sched = Scheduler::new(&model, 4);
    for id in 0..2u64 {
        sched.submit(ServeRequest::new(
            id,
            vec![1 + id as usize, 3, 5],
            8,
            SamplingConfig::greedy(),
        ));
    }
    sched.step();
    let pool = model.kv_pool();
    let both = pool.blocks_in_use();
    assert!(both > 0, "two sequences hold blocks");
    let resp = sched.cancel(0).expect("request 0 is active");
    assert_eq!(resp.finish, FinishReason::Cancelled);
    assert!(resp.generated >= 1, "it had produced tokens already");
    assert!(
        pool.blocks_in_use() < both,
        "cancel returns the blocks immediately — no step needed"
    );
    assert_eq!(sched.active(), 1);
    // The other request is unaffected and still drains cleanly.
    let out = sched.run_to_completion();
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].id, 1);
    assert_eq!(pool.blocks_in_use(), 0);
    assert_eq!(runtime::cpu_live_bytes(), baseline);
}

/// One live sequence of the shared-prefix interleaving: its full token
/// path and the cache mapping its blocks.
struct Table {
    tokens: Vec<usize>,
    cache: KvCache,
}

/// Refcount conservation snapshot: every shared physical block's
/// `Arc::strong_count` must equal the number of block tables mapping it
/// plus one if the radix index holds it; owned entries are exclusive;
/// and the pool's in-use count equals owned entries plus distinct
/// shared physical blocks. The device ledger must carry exactly one
/// `block_bytes` charge per physical block.
fn check_conservation(pool: &KvBlockPool, live: &[Table], baseline: usize) {
    let indexed: HashSet<usize> = pool.indexed_block_ids().into_iter().collect();
    let mut mapped: HashMap<usize, usize> = HashMap::new();
    let mut owned_total = 0usize;
    for t in live {
        for (id, shared) in t.cache.block_entries() {
            if shared {
                *mapped.entry(id).or_default() += 1;
            } else {
                owned_total += 1;
            }
        }
    }
    for t in live {
        for (i, (id, shared)) in t.cache.block_entries().enumerate() {
            let want = if shared {
                mapped[&id] + usize::from(indexed.contains(&id))
            } else {
                1
            };
            prop_assert_eq!(
                t.cache.block_refcount(i),
                want,
                "block {} refcount != tables mapping it (+index)",
                id
            );
        }
    }
    let distinct: HashSet<usize> = mapped.keys().copied().chain(indexed.clone()).collect();
    prop_assert_eq!(
        pool.blocks_in_use(),
        owned_total + distinct.len(),
        "pool in-use count out of sync with tables + index"
    );
    prop_assert_eq!(
        runtime::cpu_live_bytes() - baseline,
        pool.blocks_in_use() * pool.block_bytes(),
        "ledger must charge each physical block exactly once"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arbitrary admit/fork/cancel/preempt/retire interleavings over
    /// shared prefixes uphold refcount conservation after every
    /// operation, and drain — tables dropped, index cleared — returns
    /// the pool to zero blocks and the ledger to baseline.
    #[test]
    fn prop_shared_prefix_refcounts_are_conserved(
        ops_raw in proptest::collection::vec(any::<u64>(), 1..24),
        block_tokens in prop::sample::select(vec![2usize, 4]),
        bounded in any::<bool>(),
    ) {
        runtime::reset();
        let model = served(8).with_kv_config(KvBlockConfig {
            block_tokens,
            // Bounded enough to exercise the cap-pressure path (LRU
            // eviction of index-only blocks) without ever refusing a
            // checkout outright.
            max_blocks: if bounded { 64 } else { 0 },
        });
        let pool = Arc::clone(model.kv_pool());
        pool.set_prefix_cache(true);
        let baseline = runtime::cpu_live_bytes();
        let d = 8; // served() d_model
        let n_layers = 2;
        // Two prompt lineages: prompts of the same family share a stream
        // prefix, so admissions deliberately collide in the radix index.
        let fam = |f: usize, len: usize| -> Vec<usize> {
            (0..len).map(|t| (t * 5 + f * 9 + 1) % 16).collect()
        };
        let mut live: Vec<Table> = Vec::new();
        for &w in &ops_raw {
            match w % 5 {
                // Admit: look up the longest cached prefix, prefill only
                // the suffix, publish the full blocks back to the index.
                0 | 1 => {
                    let f = (w >> 3) as usize % 2;
                    let plen = 2 + (w >> 5) as usize % 11;
                    let tokens = fam(f, plen);
                    let mut cache = KvCache::new(Arc::clone(&pool));
                    let reused = pool.prefix_lookup(&tokens, &mut cache);
                    prop_assert!(reused < plen, "lookup must leave a suffix");
                    if !cache.try_reserve(plen - reused) {
                        continue; // bounded pool full: admission deferred
                    }
                    let rows = vec![0.25f32; (plen - reused) * d];
                    for layer in 0..n_layers {
                        cache.write_rows(layer, reused, &rows, &rows);
                    }
                    cache.commit(plen - reused);
                    pool.prefix_insert(&tokens, &mut cache);
                    live.push(Table { tokens, cache });
                }
                // Fork: write into an adopted shared block — COW must
                // replace the mapping with a private copy and leave the
                // index's block untouched.
                2 => {
                    let pick = (w >> 3) as usize % live.len().max(1);
                    if let Some(t) = live.get_mut(pick) {
                        let shared_at = t
                            .cache
                            .block_entries()
                            .enumerate()
                            .find(|(_, (_, shared))| *shared)
                            .map(|(b, _)| b);
                        if let Some(b) = shared_at {
                            let row = vec![0.75f32; d];
                            t.cache.write_rows(0, b * block_tokens, &row, &row);
                            let entry = t.cache.block_entries().nth(b).expect("entry exists");
                            prop_assert!(!entry.1, "write left the block shared");
                        }
                    }
                }
                // Retire: publish the final sequence to the index, then
                // drop the table.
                3 => {
                    if !live.is_empty() {
                        let mut t = live.swap_remove((w >> 3) as usize % live.len());
                        pool.prefix_insert(&t.tokens.clone(), &mut t.cache);
                    }
                }
                // Cancel / preempt: drop the table with no publication.
                _ => {
                    if !live.is_empty() {
                        live.swap_remove((w >> 3) as usize % live.len());
                    }
                }
            }
            check_conservation(&pool, &live, baseline);
        }
        // Drain: tables release their blocks, the index keeps its shared
        // blocks alive until explicitly cleared.
        live.clear();
        prop_assert_eq!(pool.blocks_in_use(), pool.prefix_cached_blocks());
        pool.clear_prefix_cache();
        prop_assert_eq!(pool.blocks_in_use(), 0, "leaked KV blocks");
        prop_assert_eq!(
            runtime::cpu_live_bytes(),
            baseline,
            "device ledger must return to baseline"
        );
    }
}

#[test]
fn cancelling_a_queued_request_returns_the_bare_prompt() {
    runtime::reset();
    let model = served(7);
    let mut sched = Scheduler::new(&model, 1);
    sched.submit(ServeRequest::new(
        0,
        vec![1, 2],
        4,
        SamplingConfig::greedy(),
    ));
    sched.submit(ServeRequest::new(
        1,
        vec![3, 4],
        4,
        SamplingConfig::greedy(),
    ));
    sched.step(); // only id 0 admitted (batch 1); id 1 still queued
    let resp = sched.cancel(1).expect("queued request found");
    assert_eq!(resp.tokens, vec![3, 4]);
    assert_eq!(resp.generated, 0);
    assert_eq!(resp.finish, FinishReason::Cancelled);
    assert!(sched.cancel(1).is_none(), "gone after the first cancel");
    sched.run_to_completion();
    assert_eq!(model.kv_pool().blocks_in_use(), 0);
}
