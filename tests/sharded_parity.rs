//! Tensor-parallel serving parity: partitioning a palettized model over a
//! learner group must never change what it computes.
//!
//! Column sharding assigns every output feature to exactly one learner,
//! which computes it over the full input row with the same LUT-GEMM inner
//! loop — so sharded logits are **bit-identical** to the unsharded model
//! for any shard count, and the whole serving stack (Generator and
//! continuous-batching Scheduler) produces token-identical results. What
//! sharding *does* change is the simulated cost: every projection pays its
//! feature all-gather through `runtime::record_all_gather`.

use edkm::core::{
    CompressSpec, Generator, PalettizedModel, SamplingConfig, Scheduler, ServeRequest,
    ShardedPalettizedModel,
};
use edkm::dist::LearnerGroup;
use edkm::nn::{LlamaConfig, LlamaModel};
use edkm::tensor::{runtime, DType, Device};

fn dense_model(seed: u64) -> LlamaModel {
    let cfg = LlamaConfig {
        vocab: 32,
        d_model: 16,
        n_heads: 2,
        n_layers: 2,
        d_ff: 32,
        max_seq: 48,
    };
    LlamaModel::new(cfg, DType::Bf16, Device::Cpu, seed)
}

fn served(seed: u64) -> PalettizedModel {
    let mut spec = CompressSpec::with_bits(3);
    spec.dkm.iters = 3;
    PalettizedModel::from_dense(&dense_model(seed), &spec).expect("servable export")
}

#[test]
fn sharded_logits_are_bit_identical_for_1_2_4_shards() {
    runtime::reset();
    let base = served(7);
    let prompt = [3usize, 1, 4, 1, 5, 9, 2, 6];
    let mut cache = base.new_cache();
    let want = base.prefill(&prompt, &mut cache).to_vec();
    for shards in [1usize, 2, 4] {
        let sharded = base.shard(LearnerGroup::new(shards));
        let mut c = sharded.new_cache();
        let got = sharded.prefill(&prompt, &mut c).to_vec();
        assert_eq!(
            got, want,
            "{shards}-way sharded prefill logits must be bit-identical"
        );
        // Decode steps stay identical too (cache state diverges never).
        let a = base
            .decode_step(&[11], std::slice::from_mut(&mut cache))
            .to_vec();
        let b = sharded
            .decode_step(&[11], std::slice::from_mut(&mut c))
            .to_vec();
        assert_eq!(a, b, "{shards}-way sharded decode diverged");
        // Re-sync the unsharded cache for the next loop iteration.
        cache = base.new_cache();
        base.prefill(&prompt, &mut cache);
    }
}

#[test]
fn sharded_scheduler_generates_token_identical_responses() {
    runtime::reset();
    let base = served(8);
    let reqs: Vec<ServeRequest> = (0..3u64)
        .map(|id| {
            ServeRequest::new(
                id,
                (0..2 + id as usize).map(|i| 1 + i * 3).collect(),
                6 + id as usize,
                if id == 0 {
                    SamplingConfig::greedy()
                } else {
                    SamplingConfig::with_top_k(0.9, 5, 70 + id)
                },
            )
        })
        .collect();
    let mut plain = Scheduler::new(&base, 2);
    for r in &reqs {
        plain.submit(r.clone());
    }
    let mut want = plain.run_to_completion();
    want.sort_by_key(|r| r.id);
    for shards in [2usize, 4] {
        let sharded = base.shard(LearnerGroup::new(shards));
        let mut sched = Scheduler::new(&sharded, 2);
        for r in &reqs {
            sched.submit(r.clone());
        }
        let mut got = sched.run_to_completion();
        got.sort_by_key(|r| r.id);
        assert_eq!(got, want, "{shards}-way sharded serving changed tokens");
    }
}

#[test]
fn sharded_generator_matches_and_charges_the_collectives() {
    runtime::reset();
    let base = served(9);
    let prompt = [2usize, 4, 8];
    let t0 = runtime::sim_seconds();
    let want = Generator::new(&base).generate_greedy(&prompt, 10);
    let unsharded_cost = runtime::sim_seconds() - t0;

    let sharded = ShardedPalettizedModel::from_dense(
        &dense_model(9),
        &{
            let mut s = CompressSpec::with_bits(3);
            s.dkm.iters = 3;
            s
        },
        LearnerGroup::new(4),
    )
    .expect("servable sharded export");
    let t1 = runtime::sim_seconds();
    let got = Generator::new(&sharded).generate_greedy(&prompt, 10);
    let sharded_cost = runtime::sim_seconds() - t1;
    assert_eq!(got, want, "sharded generation must be token-identical");
    assert!(
        sharded_cost > unsharded_cost,
        "sharded serving must pay the all-gathers on the simulated clock: \
         {sharded_cost} vs {unsharded_cost}"
    );
}
