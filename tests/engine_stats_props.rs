//! Property suite for [`StatsSnapshot`] accounting: under arbitrary
//! submit/cancel/deadline interleavings, once every stream has delivered
//! its terminal event the engine's books must balance —
//! `finished + cancelled + expired == submitted`, no KV bytes left
//! charged, and the TTFT histogram counting exactly the requests that
//! emitted at least one token.
//!
//! [`StatsSnapshot`]: edkm::core::StatsSnapshot

use edkm::core::{
    CompressSpec, EngineConfig, KvBlockConfig, PalettizedModel, Priority, Request, SamplingConfig,
    ServeEngine, ServeModel, TokenEvent,
};
use edkm::nn::{LlamaConfig, LlamaModel};
use edkm::tensor::{DType, Device};
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// One generated request of the interleaving: shape, optional deadline,
/// and whether the driver cancels it right after submission.
#[derive(Debug, Clone, Copy)]
struct Op {
    prompt_len: usize,
    max_new: usize,
    deadline_steps: Option<u64>,
    priority: Priority,
    cancel: bool,
}

impl Op {
    /// Decode an arbitrary word into an op (the offline proptest shim has
    /// no `prop_map`, so structure comes from bit-slicing raw draws).
    fn decode(w: u64) -> Op {
        Op {
            prompt_len: 1 + (w & 0x7) as usize % 5,
            max_new: 1 + ((w >> 3) & 0x7) as usize % 5,
            deadline_steps: if (w >> 6) & 1 == 1 {
                Some(1 + ((w >> 7) & 0x7))
            } else {
                None
            },
            priority: match (w >> 10) % 3 {
                0 => Priority::Low,
                1 => Priority::Normal,
                _ => Priority::High,
            },
            cancel: (w >> 12) & 1 == 1,
        }
    }
}

/// The dense weights the target and the 2-bit speculative draft are both
/// palettized from.
fn dense() -> &'static LlamaModel {
    static DENSE: OnceLock<LlamaModel> = OnceLock::new();
    DENSE.get_or_init(|| {
        let cfg = LlamaConfig {
            vocab: 64,
            d_model: 32,
            n_heads: 2,
            n_layers: 2,
            d_ff: 64,
            max_seq: 48,
        };
        LlamaModel::new(cfg, DType::Bf16, Device::Cpu, 0)
    })
}

/// The shared serve model (tiny and untrained — accounting invariants are
/// properties of the engine, not of model quality).
fn model() -> &'static PalettizedModel {
    static MODEL: OnceLock<PalettizedModel> = OnceLock::new();
    MODEL.get_or_init(|| {
        let mut spec = CompressSpec::with_bits(3);
        spec.dkm.iters = 2;
        PalettizedModel::from_dense(dense(), &spec).expect("servable export")
    })
}

fn draft() -> Arc<dyn ServeModel> {
    Arc::new(PalettizedModel::draft_from_dense(dense(), 2).expect("2-bit draft export"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn prop_stats_accounting_balances_at_drain(
        ops_raw in proptest::collection::vec(any::<u64>(), 1..10),
        max_batch in 1usize..5,
        seed in any::<u64>(),
    ) {
        let ops: Vec<Op> = ops_raw.iter().map(|&w| Op::decode(w)).collect();
        let config = EngineConfig {
            max_batch,
            queue_capacity: ops.len(),
        };
        // A third of the interleavings exercise the full serving surface:
        // prefix cache on (over a private pool so cases stay independent)
        // plus a 2-bit speculative draft. The books must balance either
        // way.
        let featured = seed.is_multiple_of(3);
        let engine = if featured {
            let m = model()
                .clone()
                .with_kv_config(KvBlockConfig {
                    block_tokens: 8,
                    max_blocks: 0,
                })
                .with_prefix_cache(true);
            ServeEngine::with_speculative(m, config, draft(), 1 + (seed % 4) as usize)
        } else {
            ServeEngine::new(model().clone(), config)
        };
        let handle = engine.handle();
        let mut streams = Vec::with_capacity(ops.len());
        for (i, op) in ops.iter().enumerate() {
            let prompt: Vec<usize> =
                (0..op.prompt_len).map(|t| (t * 7 + i) % 64).collect();
            let mut request = Request::new(prompt)
                .max_new_tokens(op.max_new)
                .sampling(if seed.is_multiple_of(2) {
                    SamplingConfig::greedy()
                } else {
                    SamplingConfig::with_top_k(0.8, 8, seed ^ i as u64)
                })
                .priority(op.priority);
            if let Some(d) = op.deadline_steps {
                request = request.deadline_steps(d);
            }
            let (rid, stream) = handle.submit(request).expect("engine accepts");
            if op.cancel {
                // Cancel immediately: races admission, prefill, and decode
                // depending on worker timing — exactly the interleavings the
                // accounting must absorb.
                handle.cancel(rid);
            }
            streams.push(stream);
        }

        // Drain every stream, counting delivered tokens per request, and
        // snapshot the stats after each: the cumulative counters must be
        // monotone and internally consistent at every observation point,
        // not just at drain.
        let mut streams_with_tokens = 0u64;
        let mut terminals = 0u64;
        let mut prev = handle.stats();
        for mut stream in streams {
            let mut tokens = 0u64;
            while let Some(ev) = stream.next_event() {
                match ev {
                    TokenEvent::Token { .. } => tokens += 1,
                    TokenEvent::Finished(_) => terminals += 1,
                }
            }
            if tokens > 0 {
                streams_with_tokens += 1;
            }
            let snap = handle.stats();
            prop_assert!(snap.prefix_hits >= prev.prefix_hits);
            prop_assert!(snap.prefix_tokens_reused >= prev.prefix_tokens_reused);
            prop_assert!(snap.spec_proposed >= prev.spec_proposed);
            prop_assert!(snap.spec_accepted >= prev.spec_accepted);
            prop_assert!(
                snap.spec_accepted <= snap.spec_proposed,
                "accepted {} beyond proposed {}",
                snap.spec_accepted,
                snap.spec_proposed
            );
            prop_assert!(
                snap.prefix_tokens_reused >= snap.prefix_hits,
                "every prefix hit adopts at least one token"
            );
            prev = snap;
        }
        prop_assert_eq!(terminals, ops.len() as u64);

        // The worker publishes stats before each terminal delivery, so by
        // the time all streams are drained the books are final; poll only
        // to absorb the last publish's lock handoff.
        let deadline = Instant::now() + Duration::from_secs(5);
        let stats = loop {
            let s = handle.stats();
            if s.finished + s.cancelled + s.expired == s.submitted || Instant::now() > deadline {
                break s;
            }
            std::thread::sleep(Duration::from_millis(1));
        };
        engine.shutdown();

        prop_assert_eq!(stats.submitted, ops.len() as u64);
        prop_assert_eq!(
            stats.finished + stats.cancelled + stats.expired,
            stats.submitted,
            "retirement classes must partition submissions"
        );
        prop_assert_eq!(
            stats.kv_live_bytes,
            0,
            "drained engine still charges KV bytes"
        );
        prop_assert_eq!(
            stats.ttft_steps.total(),
            streams_with_tokens,
            "TTFT histogram must count exactly the requests that emitted \
             a first token"
        );
        prop_assert_eq!(stats.rejected_full, 0);
        prop_assert!(stats.spec_accepted <= stats.spec_proposed);
        prop_assert!(stats.prefix_tokens_reused >= stats.prefix_hits);
        if !featured {
            prop_assert_eq!(stats.prefix_hits, 0);
            prop_assert_eq!(stats.prefix_tokens_reused, 0);
            prop_assert_eq!(stats.spec_proposed, 0);
            prop_assert_eq!(stats.spec_accepted, 0);
        }
    }
}

/// Deterministic end-to-end check that the new counters actually
/// populate through the engine: six greedy requests sharing a 16-token
/// prompt prefix, a 2-bit draft, prefix cache on. Late admissions adopt
/// the early requests' prefill blocks and the draft proposes every step.
#[test]
fn prefix_and_speculation_counters_populate_through_the_engine() {
    let m = model()
        .clone()
        .with_kv_config(KvBlockConfig {
            block_tokens: 8,
            max_blocks: 0,
        })
        .with_prefix_cache(true);
    let engine = ServeEngine::with_speculative(
        m,
        EngineConfig {
            max_batch: 2,
            queue_capacity: 6,
        },
        draft(),
        4,
    );
    let handle = engine.handle();
    let shared: Vec<usize> = (0..16).map(|t| (t * 5 + 3) % 64).collect();
    let mut streams = Vec::new();
    for i in 0..6usize {
        let mut prompt = shared.clone();
        prompt.push(i); // diverge after the shared prefix
        let (_, stream) = handle
            .submit(
                Request::new(prompt)
                    .max_new_tokens(8)
                    .sampling(SamplingConfig::greedy()),
            )
            .expect("engine accepts");
        streams.push(stream);
    }
    for mut s in streams {
        s.wait().expect("request finishes");
    }
    let stats = handle.stats();
    engine.shutdown();
    assert_eq!(stats.finished, 6);
    assert!(
        stats.prefix_hits > 0,
        "admissions behind a warm cache must hit ({:?} hits)",
        stats.prefix_hits
    );
    assert!(stats.prefix_tokens_reused >= stats.prefix_hits * 8);
    assert!(stats.spec_proposed > 0, "draft never proposed");
    assert!(stats.spec_accepted <= stats.spec_proposed);
    assert_eq!(stats.kv_live_bytes, 0, "drained engine still charges KV");
}
