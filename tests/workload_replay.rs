//! Deterministic-replay contract of the workload layer: a seed names a
//! trace byte-for-byte, and replaying a trace is a pure function of
//! `(model, trace, max_batch)` — identical token streams and aggregate
//! counters across runs, batch caps, and engine worker interleavings.

use edkm::cluster::{Cluster, ClusterConfig};
use edkm::core::{CompressSpec, EngineConfig, KvBlockConfig, PalettizedModel};
use edkm::nn::{LlamaConfig, LlamaModel};
use edkm::tensor::{runtime, DType, Device};
use edkm::workload::{
    replay_cluster, replay_engine, replay_router, replay_trace, replay_trace_speculative,
    ClusterReplayConfig, EngineReplayConfig, Trace, TraceConfig, TraceKind,
};

fn model_config() -> LlamaConfig {
    LlamaConfig {
        vocab: 64,
        d_model: 32,
        n_heads: 2,
        n_layers: 2,
        d_ff: 64,
        max_seq: 48,
    }
}

/// A tiny palettized model (untrained — replay determinism is a property
/// of the serving stack, not of model quality).
fn tiny_model() -> PalettizedModel {
    let dense = LlamaModel::new(model_config(), DType::Bf16, Device::Cpu, 0);
    let mut spec = CompressSpec::with_bits(3);
    spec.dkm.iters = 2;
    PalettizedModel::from_dense(&dense, &spec).expect("servable export")
}

fn trace_for(kind: TraceKind, seed: u64) -> Trace {
    let cfg = model_config();
    Trace::generate(&TraceConfig::new(kind, seed, 10, cfg.vocab, cfg.max_seq))
}

#[test]
fn same_seed_traces_are_byte_identical() {
    for kind in TraceKind::ALL {
        let a = trace_for(kind, 42);
        let b = trace_for(kind, 42);
        assert_eq!(a.to_bytes(), b.to_bytes(), "{kind}: same seed diverged");
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = trace_for(kind, 43);
        assert_ne!(
            a.fingerprint(),
            c.fingerprint(),
            "{kind}: different seeds must name different traces"
        );
    }
}

#[test]
fn step_replay_is_deterministic_across_runs() {
    runtime::reset();
    let model = tiny_model();
    for kind in TraceKind::ALL {
        let trace = trace_for(kind, 42);
        // A bounded pool keeps the preemption path in the replayed set too.
        let per_req = trace.max_tokens_per_request().div_ceil(8);
        let bounded = model.clone().with_kv_config(KvBlockConfig {
            block_tokens: 8,
            max_blocks: per_req * 3,
        });
        let a = replay_trace(&bounded, &trace, 4);
        let b = replay_trace(&bounded, &trace, 4);
        assert_eq!(
            a, b,
            "{kind}: two replays of the same trace must agree on every \
             token, finish reason, TTFT, and counter"
        );
        assert_eq!(a.counters.submitted, trace.requests().len() as u64);
    }
}

#[test]
fn tokens_and_counters_are_identical_across_batch_caps() {
    runtime::reset();
    let model = tiny_model();
    // Deadline-free kinds: every request finishes naturally at any batch
    // cap, so the full outcome set must be batch-independent.
    for kind in [TraceKind::Bursty, TraceKind::Chat, TraceKind::Summarize] {
        let trace = trace_for(kind, 7);
        let baseline = replay_trace(&model, &trace, 2);
        for max_batch in [4usize, 8] {
            let run = replay_trace(&model, &trace, max_batch);
            assert_eq!(run.outcomes.len(), baseline.outcomes.len());
            for (a, b) in run.outcomes.iter().zip(&baseline.outcomes) {
                assert_eq!(a.id, b.id);
                assert_eq!(
                    a.tokens, b.tokens,
                    "{kind}: request {} tokens changed with batch cap {max_batch}",
                    a.id
                );
                assert_eq!(a.finish, b.finish);
            }
            assert_eq!(run.counters.submitted, baseline.counters.submitted);
            assert_eq!(run.counters.finished, baseline.counters.finished);
            assert_eq!(run.counters.expired, 0);
            assert_eq!(
                run.counters.tokens_generated,
                baseline.counters.tokens_generated
            );
        }
    }
}

/// Chat-trace regression for prefix sharing: multi-turn sessions replay
/// their history, so with the prefix cache on later turns adopt the
/// earlier turn's KV blocks copy-on-write. Tokens must not move at all;
/// the cache must actually engage (`prefix_hit_rate > 0`) and concurrent
/// turns mapping the same physical blocks must lower the deduplicated
/// peak KV footprint strictly below the private-blocks replay.
#[test]
fn chat_trace_prefix_sharing_reuses_blocks_without_changing_tokens() {
    runtime::reset();
    let cfg = model_config();
    let model = tiny_model();
    // Enough sessions that turns sharing a history overlap in flight at
    // the peak step (a handful of sessions rarely line that up).
    let trace = Trace::generate(&TraceConfig::new(
        TraceKind::Chat,
        11,
        24,
        cfg.vocab,
        cfg.max_seq,
    ));
    let kv = KvBlockConfig {
        block_tokens: 8,
        max_blocks: 0,
    };
    let off = replay_trace(&model.clone().with_kv_config(kv), &trace, 8);
    let on = replay_trace(
        &model.clone().with_kv_config(kv).with_prefix_cache(true),
        &trace,
        8,
    );

    assert_eq!(off.outcomes.len(), on.outcomes.len());
    for (a, b) in off.outcomes.iter().zip(&on.outcomes) {
        assert_eq!(a.id, b.id);
        assert_eq!(
            a.tokens, b.tokens,
            "prefix sharing changed tokens of request {}",
            a.id
        );
        assert_eq!(a.finish, b.finish);
    }
    assert_eq!(off.counters.prefix_hits, 0);
    assert!(
        on.counters.prefix_hit_rate() > 0.0,
        "chat trace must hit the prefix cache (hits {})",
        on.counters.prefix_hits
    );
    assert!(
        on.counters.prefix_tokens_reused >= on.counters.prefix_hits * kv.block_tokens as u64,
        "every hit adopts at least one full block"
    );
    assert!(
        on.counters.kv_peak_bytes < off.counters.kv_peak_bytes,
        "sharing must strictly lower peak KV ({} vs {})",
        on.counters.kv_peak_bytes,
        off.counters.kv_peak_bytes
    );
}

/// The speculative replay driver is greedy-exact: a 2-bit draft proposing
/// 4 tokens per step leaves every chat-trace token and finish reason
/// unchanged, while the speculation counters record real work.
#[test]
fn speculative_chat_replay_is_token_identical_to_plain_replay() {
    runtime::reset();
    let model = tiny_model();
    let dense = LlamaModel::new(model_config(), DType::Bf16, Device::Cpu, 0);
    let draft = std::sync::Arc::new(
        PalettizedModel::draft_from_dense(&dense, 2).expect("2-bit draft export"),
    );
    let trace = trace_for(TraceKind::Chat, 11);
    let plain = replay_trace(&model, &trace, 4);
    let spec = replay_trace_speculative(&model, &trace, 4, draft, 4);
    assert_eq!(plain.outcomes.len(), spec.outcomes.len());
    for (a, b) in plain.outcomes.iter().zip(&spec.outcomes) {
        assert_eq!(a.id, b.id);
        assert_eq!(
            a.tokens, b.tokens,
            "speculation changed tokens of request {}",
            a.id
        );
        assert_eq!(a.finish, b.finish);
    }
    assert_eq!(plain.counters.spec_proposed, 0);
    assert!(spec.counters.spec_proposed > 0, "draft never proposed");
    assert!(
        spec.counters.spec_accepted <= spec.counters.spec_proposed,
        "cannot accept more than proposed"
    );
    // Fewer target forwards for the same tokens is the whole point.
    assert!(
        spec.counters.decode_steps <= plain.counters.decode_steps,
        "speculation must not add target steps ({} vs {})",
        spec.counters.decode_steps,
        plain.counters.decode_steps
    );
}

#[test]
fn engine_replay_matches_step_replay_across_worker_interleavings() {
    runtime::reset();
    let model = tiny_model();
    let trace = trace_for(TraceKind::Chat, 11);
    let step = replay_trace(&model, &trace, 4);

    // Two engine shapes: different batch caps and admission capacities
    // change thread interleavings and queue pressure, never tokens.
    for (max_batch, queue_capacity) in [(4usize, 10usize), (8, 2)] {
        let eng = replay_engine(
            model.clone(),
            &trace,
            EngineReplayConfig {
                max_batch,
                queue_capacity,
            },
        );
        assert_eq!(eng.outcomes.len(), step.outcomes.len());
        for (e, s) in eng.outcomes.iter().zip(&step.outcomes) {
            assert_eq!(e.id, s.id);
            assert_eq!(
                e.tokens, s.tokens,
                "engine (batch {max_batch}, queue {queue_capacity}) diverged \
                 from the virtual-clock replay on request {}",
                e.id
            );
        }
        assert_eq!(eng.counters.submitted, step.counters.submitted);
        assert_eq!(eng.counters.finished, step.counters.finished);
        assert_eq!(eng.counters.cancelled, 0);
        assert_eq!(eng.counters.expired, 0);
        assert_eq!(
            eng.counters.tokens_generated,
            step.counters.tokens_generated
        );
        assert_eq!(eng.stats.kv_live_bytes, 0, "drained engine leaked KV");
    }
}

#[test]
fn cluster_replay_is_token_identical_to_engine_replay_at_any_replica_count() {
    runtime::reset();
    let model = tiny_model();
    let trace = trace_for(TraceKind::Chat, 42);
    let kv = KvBlockConfig {
        block_tokens: 4,
        max_blocks: 0,
    };
    let cfg = EngineReplayConfig {
        max_batch: 4,
        queue_capacity: trace.requests().len(),
    };
    let bare = replay_engine(
        model.clone().with_kv_config(kv).with_prefix_cache(true),
        &trace,
        cfg,
    );
    for replicas in [1usize, 2, 4] {
        let fleet: Vec<PalettizedModel> = (0..replicas)
            .map(|_| model.clone().with_kv_config(kv).with_prefix_cache(true))
            .collect();
        let rep = replay_cluster(
            fleet,
            &trace,
            ClusterReplayConfig {
                engine: cfg,
                affinity: true,
            },
        );
        assert_eq!(rep.outcomes.len(), bare.outcomes.len());
        for (c, b) in rep.outcomes.iter().zip(&bare.outcomes) {
            assert_eq!(c.id, b.id);
            assert_eq!(
                c.tokens, b.tokens,
                "{replicas}-replica cluster diverged from the bare engine \
                 on request {}",
                c.id
            );
        }
    }
}

#[test]
fn affinity_routing_lowers_fleet_resident_kv_peak() {
    runtime::reset();
    let model = tiny_model();
    let cfg = model_config();
    // Enough chat sessions that placement matters.
    let trace = Trace::generate(&TraceConfig::new(
        TraceKind::Chat,
        7,
        24,
        cfg.vocab,
        cfg.max_seq,
    ));
    let kv = KvBlockConfig {
        block_tokens: 4,
        max_blocks: 0,
    };
    let run = |affinity: bool| -> (usize, f64) {
        let fleet: Vec<PalettizedModel> = (0..4)
            .map(|_| model.clone().with_kv_config(kv).with_prefix_cache(true))
            .collect();
        let cluster = Cluster::new(
            fleet,
            ClusterConfig {
                engine: EngineConfig {
                    max_batch: 8,
                    queue_capacity: trace.requests().len(),
                },
                affinity,
                ..ClusterConfig::default()
            },
        );
        let rep = replay_router(&cluster.handle(), &trace);
        let peak = cluster.resident_peak_bytes();
        cluster.shutdown();
        (peak, rep.cluster.affinity_hit_rate())
    };
    let (peak_on, hit_rate) = run(true);
    let (peak_off, _) = run(false);
    assert!(hit_rate > 0.0, "chat turns should rediscover their replica");
    assert!(
        peak_on < peak_off,
        "sticky sessions dedup their history into one radix index, so the \
         fleet must hold strictly less resident KV with affinity on \
         ({peak_on} B) than off ({peak_off} B)"
    );
}
