//! Bit-parity contract of exact-acceptance speculative decoding: a
//! scheduler verifying draft proposals in batched target forwards must
//! emit exactly the tokens plain greedy decoding emits — for every
//! draft-k, every batch cap, under KV-pressure preemption, and even when
//! the draft model is garbage. Speculation is allowed to change only how
//! fast tokens arrive (accepted drafts per step), never which tokens.

use edkm::core::{
    CompressSpec, FinishReason, KvBlockConfig, PalettizedModel, Priority, SamplingConfig,
    Scheduler, ServeModel, ServeRequest, StepEvents,
};
use edkm::nn::{LlamaConfig, LlamaModel};
use edkm::tensor::{runtime, DType, Device};
use std::sync::{Arc, OnceLock};

fn model_config() -> LlamaConfig {
    LlamaConfig {
        vocab: 64,
        d_model: 32,
        n_heads: 2,
        n_layers: 2,
        d_ff: 64,
        max_seq: 48,
    }
}

/// The dense model both the target and the faithful draft are palettized
/// from (untrained — parity is a property of the decode loop, not of
/// model quality).
fn dense() -> &'static LlamaModel {
    static DENSE: OnceLock<LlamaModel> = OnceLock::new();
    DENSE.get_or_init(|| LlamaModel::new(model_config(), DType::Bf16, Device::Cpu, 0))
}

fn target() -> PalettizedModel {
    let mut spec = CompressSpec::with_bits(3);
    spec.dkm.iters = 2;
    PalettizedModel::from_dense(dense(), &spec).expect("servable export")
}

/// A faithful draft: the same dense weights at 2 bits, so its greedy
/// choices usually match the target's and most proposals are accepted.
fn good_draft() -> Arc<dyn ServeModel> {
    Arc::new(PalettizedModel::draft_from_dense(dense(), 2).expect("2-bit draft export"))
}

/// A garbage draft: a different random initialization entirely, so its
/// proposals are near-uncorrelated with the target's choices. Exact
/// acceptance must shrug this off — only the accept rate may drop.
fn garbage_draft() -> Arc<dyn ServeModel> {
    let other = LlamaModel::new(model_config(), DType::Bf16, Device::Cpu, 999);
    Arc::new(PalettizedModel::draft_from_dense(&other, 2).expect("2-bit draft export"))
}

fn requests(n: usize) -> Vec<ServeRequest> {
    let vocab = model_config().vocab;
    (0..n)
        .map(|i| ServeRequest {
            id: i as u64,
            prompt: (0..3 + i % 5)
                .map(|t| (t * 11 + i * 7 + 2) % vocab)
                .collect(),
            max_new: 6 + i % 7,
            sampling: SamplingConfig::greedy(),
            stop_tokens: Vec::new(),
            priority: Priority::Normal,
            deadline_steps: None,
        })
        .collect()
}

/// One finished request: `(id, emitted tokens, finish reason)`.
type Outcome = (u64, Vec<usize>, FinishReason);

/// Run `reqs` to completion and return `(outcomes sorted by id, sched
/// counters (preemptions, decode_steps, spec_proposed, spec_accepted))`.
fn run(
    model: &PalettizedModel,
    speculative: Option<(Arc<dyn ServeModel>, usize)>,
    reqs: &[ServeRequest],
    max_batch: usize,
) -> (Vec<Outcome>, [u64; 4]) {
    let mut sched = match speculative {
        Some((draft, k)) => Scheduler::with_speculative(model, max_batch, draft, k),
        None => Scheduler::new(model, max_batch),
    };
    for r in reqs {
        sched.submit(r.clone());
    }
    let mut events = StepEvents::default();
    let mut out = Vec::new();
    while !sched.is_idle() {
        sched.step_events_into(&mut events);
        for resp in events.finished.drain(..) {
            out.push((resp.id, resp.tokens, resp.finish));
        }
    }
    out.sort_by_key(|o| o.0);
    let counters = [
        sched.preemptions(),
        sched.decode_steps(),
        sched.spec_proposed(),
        sched.spec_accepted(),
    ];
    (out, counters)
}

/// Speculative greedy decode is token-identical to plain greedy decode
/// for draft-k in {1, 2, 4, 8} at batch caps 1, 4 and 8.
#[test]
fn speculative_greedy_matches_plain_greedy_across_k_and_batch() {
    runtime::reset();
    let model = target();
    let reqs = requests(8);
    for max_batch in [1usize, 4, 8] {
        let (plain, _) = run(&model, None, &reqs, max_batch);
        for draft_k in [1usize, 2, 4, 8] {
            let (spec, c) = run(&model, Some((good_draft(), draft_k)), &reqs, max_batch);
            assert_eq!(
                plain, spec,
                "draft_k {draft_k} batch {max_batch}: speculative output diverged"
            );
            assert!(c[2] > 0, "draft_k {draft_k}: draft never proposed");
            assert!(c[3] <= c[2], "accepted beyond proposed");
        }
    }
}

/// Parity holds under KV-pool pressure: a pool too small for the full
/// batch forces preemptions (and makes the speculative `try_reserve`
/// fall back to plain decode), and the output still does not move.
#[test]
fn speculative_parity_survives_forced_preemption() {
    runtime::reset();
    let reqs = requests(6);
    let longest = reqs
        .iter()
        .map(|r| r.prompt.len() + r.max_new)
        .max()
        .unwrap();
    let kv = KvBlockConfig {
        block_tokens: 4,
        // Room for roughly two max-length sequences: batch 4 admission
        // overcommits and decode growth must evict someone.
        max_blocks: longest.div_ceil(4) * 2,
    };
    let model = target().with_kv_config(kv);
    let (plain, pc) = run(&model, None, &reqs, 4);
    assert!(
        pc[0] > 0,
        "pool was sized to force preemption, got none (peak demand never hit the cap)"
    );
    for draft_k in [2usize, 4] {
        let (spec, c) = run(&model, Some((good_draft(), draft_k)), &reqs, 4);
        // Compare ids and tokens, not finish reasons: speculation retires
        // sequences in fewer steps, so who gets preempted when is a
        // scheduling artifact — the emitted tokens must not move.
        assert_eq!(plain.len(), spec.len());
        for (p, s) in plain.iter().zip(&spec) {
            assert_eq!(p.0, s.0);
            assert_eq!(
                p.1, s.1,
                "draft_k {draft_k}: preemption broke speculative parity on request {}",
                p.0
            );
        }
        assert!(c[2] > 0, "draft never proposed under pressure");
    }
}

/// A draft with unrelated weights proposes mostly-wrong tokens; exact
/// acceptance rejects them and re-derives the target's own token, so the
/// output is still identical — only the accept rate collapses relative
/// to the faithful draft.
#[test]
fn garbage_draft_changes_accept_rate_but_not_tokens() {
    runtime::reset();
    let model = target();
    let reqs = requests(8);
    let (plain, _) = run(&model, None, &reqs, 4);
    let (good, gc) = run(&model, Some((good_draft(), 4)), &reqs, 4);
    let (bad, bc) = run(&model, Some((garbage_draft(), 4)), &reqs, 4);
    assert_eq!(plain, good, "faithful draft diverged");
    assert_eq!(plain, bad, "garbage draft diverged");
    assert!(gc[2] > 0 && bc[2] > 0);
    let good_rate = gc[3] as f64 / gc[2] as f64;
    let bad_rate = bc[3] as f64 / bc[2] as f64;
    assert!(
        bad_rate < good_rate,
        "garbage draft should be accepted less than the faithful one \
         ({bad_rate:.3} vs {good_rate:.3})"
    );
}

/// Speculation buys steps: with a faithful draft the same tokens arrive
/// in strictly fewer batched target forwards than plain decode.
#[test]
fn faithful_draft_saves_decode_steps() {
    runtime::reset();
    let model = target();
    let reqs = requests(8);
    let (plain, pc) = run(&model, None, &reqs, 4);
    let (spec, sc) = run(&model, Some((good_draft(), 4)), &reqs, 4);
    assert_eq!(plain, spec);
    assert!(
        sc[1] < pc[1],
        "faithful draft saved no steps ({} vs {})",
        sc[1],
        pc[1]
    );
}
