//! Integration test: the Table 3 quality claim at test scale — train-time
//! clustering (eDKM) beats post-training RTN at 3 bits.

use edkm::core::{CompressSpec, CompressionPipeline, EdkmConfig};
use edkm::data::{Corpus, Grammar};
use edkm::eval::perplexity;
use edkm::nn::{AdamWConfig, LlamaConfig, LlamaModel, LmBatch, TrainConfig, Trainer};
use edkm::quant::{quantize_model, RtnQuantizer};
use edkm::tensor::{runtime, DType, Device};

fn pretrained() -> (LlamaModel, Corpus) {
    runtime::reset();
    let cfg = LlamaConfig {
        vocab: 64,
        d_model: 32,
        n_heads: 2,
        n_layers: 1,
        d_ff: 64,
        max_seq: 17,
    };
    let grammar = Grammar::default_with_seed(0);
    let corpus = Corpus::generate(&grammar, 80, 8, 16, 1);
    let model = LlamaModel::new(cfg, DType::Bf16, Device::Cpu, 0);
    let params = model.params();
    let mut trainer = Trainer::new(TrainConfig {
        optim: AdamWConfig {
            lr: 3e-3,
            ..AdamWConfig::default()
        },
        ..TrainConfig::default()
    });
    let batches: Vec<LmBatch> = corpus.batches(8).into_iter().map(LmBatch::new).collect();
    for step in 0..60 {
        trainer.step(&model, &batches[step % batches.len()], &params, None);
    }
    (model, corpus)
}

fn copy_of(base: &LlamaModel) -> LlamaModel {
    let m = LlamaModel::new(*base.config(), base.dtype(), base.device(), 9);
    m.copy_weights_from(base);
    m
}

#[test]
fn edkm_3bit_beats_rtn_3bit_on_perplexity() {
    let (base, corpus) = pretrained();
    let eval_windows: Vec<Vec<usize>> = corpus.windows().iter().take(12).cloned().collect();
    let base_ppl = perplexity(&base, &eval_windows);

    // RTN 3-bit, post-training.
    let rtn_model = copy_of(&base);
    quantize_model(&rtn_model, &RtnQuantizer::new(3, 0), None);
    let rtn_ppl = perplexity(&rtn_model, &eval_windows);

    // eDKM 3-bit, train-time (brief fine-tune on the same distribution).
    let edkm_model = copy_of(&base);
    let mut spec = CompressSpec::with_bits(3);
    spec.epochs = 1;
    spec.edkm = EdkmConfig::full(2);
    spec.dkm.iters = 3;
    spec.train.optim.lr = 1e-3;
    let batches: Vec<LmBatch> = corpus
        .batches(8)
        .into_iter()
        .take(12)
        .map(LmBatch::new)
        .collect();
    let result = CompressionPipeline::new(spec).fine_tune_and_compress(&edkm_model, &batches);
    let shipped = copy_of(&base);
    result.compressed.apply_to(&shipped);
    let edkm_ppl = perplexity(&shipped, &eval_windows);

    assert!(
        edkm_ppl < rtn_ppl,
        "train-time clustering must beat RTN at 3 bits: eDKM {edkm_ppl:.2} vs RTN {rtn_ppl:.2} (base {base_ppl:.2})"
    );
    // Note: eDKM may legitimately beat the *base* perplexity here because
    // its fine-tuning continues training on the same distribution; the
    // claim under test is only the ordering against RTN.
    assert!(edkm_ppl.is_finite() && base_ppl.is_finite());
}

#[test]
fn edkm_model_is_smallest_shipped_artifact() {
    let (base, _corpus) = pretrained();
    // eDKM ships 3-bit LUT weights + 8-bit embeddings; RTN baselines ship
    // 16-bit embeddings — eDKM must be the smaller file, as in Table 3.
    let pipeline = CompressionPipeline::new(CompressSpec::with_bits(3));
    let compressed = pipeline.export(&base);

    let rtn_model = copy_of(&base);
    let rtn_report = quantize_model(&rtn_model, &RtnQuantizer::new(3, 0), None);

    assert!(
        compressed.size_bytes() < rtn_report.size_bytes,
        "eDKM {} B vs RTN {} B",
        compressed.size_bytes(),
        rtn_report.size_bytes
    );
    assert!(compressed.size_bytes() * 3 < base.native_size_bytes());
}
